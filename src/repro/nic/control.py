"""The ``STATUS`` and ``CONTROL`` interface registers.

The paper (Section 2.1, Figure 1) gives both registers by role rather than
by exact layout: ``CONTROL`` holds values that control the interface's
operation (what to do when the output queue is full, the queue thresholds of
Section 2.2.4, the protection state of Section 2.1.3) and ``STATUS`` reports
the interface's current state (input-queue occupancy, the arrived message's
type, exceptional conditions).  The concrete bit assignments below are this
reproduction's implementation choice; all software in the repository reads
and writes fields through these layouts, never raw bit positions.
"""

from __future__ import annotations

import enum

from repro.utils.bitfield import BitField, BitLayout, Register

QUEUE_LEN_BITS = 5
"""Width of the queue-occupancy fields; supports depths up to 31."""

PIN_BITS = 12
"""Width of the process identification number used for protection.

Originally 8; widened to 12 so the multi-tenant serving study
(:mod:`repro.tenancy`) can name thousands of protection domains.  All
software accesses CONTROL through field names (see the module docstring),
so the layout shift is invisible outside this file.
"""


class SendFullPolicy(enum.IntEnum):
    """What a SEND does when the output queue is full (Section 2.1.1).

    ``STALL`` blocks the processor until the network drains the queue;
    ``EXCEPTION`` raises instead, for software that must keep running to
    help empty the network.
    """

    STALL = 0
    EXCEPTION = 1


STATUS_LAYOUT = BitLayout(
    "STATUS",
    [
        # A valid message occupies the input registers (i0..i4).
        BitField("msg_valid", 0, 1),
        # The 4-bit type of that message (Section 2.2.1).
        BitField("msg_type", 1, 4),
        # Occupancy of the two queues, in messages.
        BitField("iq_len", 5, QUEUE_LEN_BITS),
        BitField("oq_len", 10, QUEUE_LEN_BITS),
        # Almost-full conditions (Section 2.2.4).
        BitField("iafull", 15, 1),
        BitField("oafull", 16, 1),
        # Exceptional conditions reported through handler id 0001.
        BitField("exc_input_error", 17, 1),
        BitField("exc_output_overflow", 18, 1),
        BitField("exc_pin_mismatch", 19, 1),
        BitField("exc_privileged", 20, 1),
        # OR of all exception bits, checked first by the exception handler.
        BitField("exc_any", 21, 1),
    ],
)

CONTROL_LAYOUT = BitLayout(
    "CONTROL",
    [
        # Almost-full thresholds for the two queues (Section 2.2.4).
        BitField("iq_threshold", 0, QUEUE_LEN_BITS),
        BitField("oq_threshold", 5, QUEUE_LEN_BITS),
        # SEND-when-full policy (Section 2.1.1).
        BitField("full_policy", 10, 1),
        # Protection state (Section 2.1.3).
        BitField("active_pin", 11, PIN_BITS),
        BitField("pin_check", 11 + PIN_BITS, 1),
        BitField("privileged_interrupt", 12 + PIN_BITS, 1),
        # Section 2.1 leaves polled-versus-interrupt-driven open; this bit
        # selects an interrupt on message arrival instead of polling.
        BitField("arrival_interrupt", 13 + PIN_BITS, 1),
    ],
)

EXCEPTION_FIELDS = (
    "exc_input_error",
    "exc_output_overflow",
    "exc_pin_mismatch",
    "exc_privileged",
)


class StatusRegister(Register):
    """The hardware-maintained ``STATUS`` register."""

    def __init__(self) -> None:
        super().__init__(STATUS_LAYOUT)

    def raise_exception(self, name: str) -> None:
        """Set one exception bit and the summary bit."""
        self[name] = 1
        self["exc_any"] = 1

    def clear_exceptions(self) -> None:
        """Clear all exception bits (done by the software exception handler)."""
        for field_name in EXCEPTION_FIELDS:
            self[field_name] = 0
        self["exc_any"] = 0

    @property
    def has_exception(self) -> bool:
        return bool(self["exc_any"])

    def pending_exceptions(self) -> tuple[str, ...]:
        """Names of the exception conditions currently asserted."""
        return tuple(name for name in EXCEPTION_FIELDS if self[name])


class ControlRegister(Register):
    """The software-written ``CONTROL`` register."""

    def __init__(
        self,
        iq_threshold: int = 12,
        oq_threshold: int = 12,
        full_policy: SendFullPolicy = SendFullPolicy.STALL,
    ) -> None:
        super().__init__(CONTROL_LAYOUT)
        self["iq_threshold"] = iq_threshold
        self["oq_threshold"] = oq_threshold
        self["full_policy"] = int(full_policy)

    @property
    def full_policy(self) -> SendFullPolicy:
        return SendFullPolicy(self["full_policy"])

    @full_policy.setter
    def full_policy(self, policy: SendFullPolicy) -> None:
        self["full_policy"] = int(policy)

    @property
    def pin_checking(self) -> bool:
        return bool(self["pin_check"])

    def enable_pin_checking(self, active_pin: int) -> None:
        """Turn on PIN matching for the given active process."""
        self["active_pin"] = active_pin
        self["pin_check"] = 1

    def disable_pin_checking(self) -> None:
        self["pin_check"] = 0
