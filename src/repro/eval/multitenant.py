"""Multi-tenant serving: thousands of protection domains, three policies.

The paper's Section 2.1.3 protects two processes; this study asks what
happens when the receive/dispatch path multiplexes *hundreds to
thousands* of protection domains under heavy-tailed open-loop load.  One
tenant population — a fixed-rate flooder spraying the hot node, victims
whose destination mix concentrates there, and a Pareto-gapped background
— is served by each of the three :mod:`repro.tenancy` policies from the
same seed:

* **gang** — synchronous slices with the network drained between them
  (the CM-5 strategy the paper cites);
* **round-robin** — independent per-node switching on quantum
  boundaries, PIN-checked diversion filing mismatches;
* **quantum** — preemptive deepest-backlog-first switching.

The report is a QoS/fairness study: per-role dispatch-latency
percentiles (victims vs background), the victim-analysis comparison
across policies, and the worst individual victims.  Under independent
switching every flood message that reaches a node whose resident tenant
differs interrupts the processor (Section 2.1.3's privileged filing), so
the hot node's cycles leak to the flooder and victim tail latency
explodes; gang scheduling's drained network never delivers an
inactive tenant's message, so victims keep their service share.

Latencies are right-censored at the horizon: an arrival never
dispatched contributes its age, so a starving policy cannot look fast
by dropping its hard traffic.  Every table is a pure function of the
seed — repeat runs are byte-identical.

Usage::

    python -m repro.eval.multitenant          # text report
    python -m repro --only multitenant
"""

from __future__ import annotations

from typing import Dict, List

from repro.exp.registry import register
from repro.exp.spec import EvalOptions, ExperimentSpec
from repro.tenancy import SCHEDULER_NAMES, MultiTenantRun, make_tenants
from repro.tenancy.workload import ROLE_VICTIM
from repro.utils.tables import render_table


def multitenant_params(options: EvalOptions) -> Dict:
    """The serving configuration derived from the CLI options.

    The default grid serves 512 tenants over a 4×4 mesh for 16k cycles
    under all three policies; ``--paper-scale`` doubles the tenant
    population.  The generation window stops 4k cycles before the
    horizon so in-flight work can finish (what cannot is censored).
    """
    return {
        "n_tenants": 1024 if options.paper_scale else 512,
        "width": 4,
        "height": 4,
        "seed": 42,
        "gen_window": 12000,
        "horizon": 16000,
        "schedulers": list(SCHEDULER_NAMES),
        "service_interval": 4,
        "quantum": 50,
        "slice_cycles": 80,
        "switch_cycles": 4,
        "tenant_cap": 8,
        "worst_rows": 8,
    }


def run_policy(name: str, tenants, params: Dict) -> Dict:
    """Serve ``tenants`` under policy ``name``; returns the run payload."""
    run = MultiTenantRun(
        name,
        tenants,
        seed=params["seed"],
        width=params["width"],
        height=params["height"],
        gen_window=params["gen_window"],
        horizon=params["horizon"],
        service_interval=params["service_interval"],
        quantum=params["quantum"],
        slice_cycles=params["slice_cycles"],
        switch_cycles=params["switch_cycles"],
        tenant_cap=params["tenant_cap"],
    )
    cycles = run.run()
    payload = run.payload()
    payload["cycles"] = cycles
    return payload


def compute_multitenant(params: Dict) -> Dict:
    """One tenant population, served under every policy from one seed."""
    n_nodes = params["width"] * params["height"]
    tenants = make_tenants(params["n_tenants"], n_nodes, params["seed"])
    runs: Dict[str, Dict] = {}
    for name in params["schedulers"]:
        runs[name] = run_policy(name, tenants, params)
    return {
        "runs": runs,
        "victim_p99": {
            name: runs[name]["roles"][ROLE_VICTIM]["p99"] for name in runs
        },
    }


def multitenant_metrics(payload: Dict) -> Dict[str, float]:
    """Flat per-policy metrics for the perf database."""
    metrics: Dict[str, float] = {}
    for name, run in payload["runs"].items():
        roles = run["roles"]
        metrics[f"{name}_victim_p99"] = roles["victim"]["p99"]
        metrics[f"{name}_victim_p50"] = roles["victim"]["p50"]
        metrics[f"{name}_normal_p99"] = roles["normal"]["p99"]
        metrics[f"{name}_completion"] = run["completion"]
        metrics[f"{name}_dispatched"] = run["dispatched"]
    return metrics


def _fmt(value: float) -> object:
    """Integral floats render without the trailing ``.0``."""
    if isinstance(value, float) and value == int(value):
        return int(value)
    return value


def render_multitenant(params: Dict, payload: Dict) -> str:
    runs = payload["runs"]
    summary = render_table(
        [
            "policy",
            "dispatched",
            "completion",
            "switches",
            "pin diverts",
            "cap diverts",
            "victim p50",
            "victim p99",
            "normal p99",
        ],
        [
            [
                name,
                f"{run['dispatched']}/{run['scheduled']}",
                f"{run['completion']:.1%}",
                run["switches"],
                run["diverted"].get("pin", 0),
                run["diverted"].get("cap", 0),
                _fmt(run["roles"]["victim"]["p50"]),
                _fmt(run["roles"]["victim"]["p99"]),
                _fmt(run["roles"]["normal"]["p99"]),
            ]
            for name, run in runs.items()
        ],
        title=(
            f"Multi-tenant serving: {params['n_tenants']} tenants over a "
            f"{params['width']}x{params['height']} mesh, "
            f"{params['horizon']} cycles, seed {params['seed']}"
        ),
    )

    role_rows: List[List[object]] = []
    for name, run in runs.items():
        for role in ("victim", "normal", "flooder"):
            stats = run["roles"][role]
            role_rows.append(
                [
                    name,
                    role,
                    stats["count"],
                    _fmt(stats["p50"]),
                    _fmt(stats["p90"]),
                    _fmt(stats["p99"]),
                    stats["mean"],
                ]
            )
    roles = render_table(
        ["policy", "role", "dispatches", "p50", "p90", "p99", "mean"],
        role_rows,
        title="Victim analysis: dispatch latency by role (cycles)",
    )

    lines = [summary, "", roles]

    # The worst individual victims under the harshest policy, compared
    # against their latency under every other policy.
    baseline = (
        "round-robin" if "round-robin" in runs else next(iter(runs))
    )
    by_pin = {
        name: {row["pin"]: row for row in run["tenant_table"]}
        for name, run in runs.items()
    }
    victims = [
        row
        for row in runs[baseline]["tenant_table"]
        if row["role"] == ROLE_VICTIM and row["generated"]
    ]
    victims.sort(key=lambda row: (-row["p99"], row["pin"]))
    worst = victims[: params["worst_rows"]]
    if worst:
        worst_table = render_table(
            ["pin", "generated", "censored"]
            + [f"{name} p99" for name in runs],
            [
                [
                    row["pin"],
                    row["generated"],
                    row["censored"],
                    *[_fmt(by_pin[name][row["pin"]]["p99"]) for name in runs],
                ]
                for row in worst
            ],
            title=f"Worst victims under {baseline} (p99 across policies)",
        )
        lines.extend(["", worst_table])

    victim_p99 = payload["victim_p99"]
    if "gang" in victim_p99 and baseline in victim_p99 and baseline != "gang":
        gang = victim_p99["gang"] or 1
        ratio = victim_p99[baseline] / gang
        lines.append(
            f"\nVictim p99 under {baseline} is {ratio:.1f}x gang "
            "scheduling's: every flood message hitting a node whose "
            "resident tenant differs interrupts the processor "
            "(Section 2.1.3), while gang's drained network never "
            "delivers an inactive tenant's message."
        )
    return "\n".join(lines)


register(
    ExperimentSpec(
        name="multitenant",
        title="Multi-tenant serving QoS (extension)",
        produces=("runs", "victim_p99"),
        params=multitenant_params,
        compute=compute_multitenant,
        render=render_multitenant,
    )
)


def main(argv=None) -> None:  # pragma: no cover - CLI
    params = multitenant_params(EvalOptions())
    print(render_multitenant(params, compute_multitenant(params)))


if __name__ == "__main__":  # pragma: no cover
    main()
