"""The off-chip latency sensitivity study (paper Section 4.2.3).

"Figure 12 assumes a two cycle latency for reads from the off-chip
interface.  If, however, the latency is increased to 8 cycles instead of
2, then the communication costs of the off-chip optimized model will
double.  As a result, relegating the network interface off-chip will not
remain a viable alternative for future generations of multiprocessors."

This harness sweeps the off-chip read latency, reprices a program's
message mix at each point, and reports the communication cost relative to
the 2-cycle baseline.

Usage::

    python -m repro.eval.latency [matmul|gamteb] [--latencies 2 4 8 16]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.exp.artifacts import to_jsonable
from repro.exp.registry import register
from repro.exp.runcache import resolve_key, run_program
from repro.exp.spec import ExperimentSpec
from repro.impls.base import OPTIMIZED_OFF_CHIP
from repro.kernels.harness import (
    measure_dispatch,
    measure_processing,
    measure_pwrite_deferred_line,
    measure_sending,
)
from repro.kernels.sequences import PROCESSING_CASES, SENDING_MESSAGES
from repro.tam.costmap import MessageCostTable, breakdown
from repro.tam.stats import TamStats
from repro.utils.tables import render_table

BASELINE_DEAD_CYCLES = 2
"""The paper's Figure 12 assumption for off-chip reads."""


def cost_table_at_latency(dead_cycles: int) -> MessageCostTable:
    """Measure the full Table 1 price set at a swept off-chip latency."""
    model = OPTIMIZED_OFF_CHIP.with_off_chip_latency(dead_cycles)
    sending = {
        message: measure_sending(message, model).cycles
        for message in SENDING_MESSAGES
    }
    processing = {
        case: measure_processing(case, model).cycles
        for case in PROCESSING_CASES
        if case != "pwrite_deferred"
    }
    base, slope = measure_pwrite_deferred_line(model)
    return MessageCostTable(
        model_key=model.key,
        sending=sending,
        dispatch=measure_dispatch(model).cycles,
        processing=processing,
        pwrite_deferred_base=base,
        pwrite_deferred_slope=slope,
        source=f"measured@latency={dead_cycles}",
    )


@dataclass
class LatencyPoint:
    dead_cycles: int
    communication: int
    dispatch: int
    total: int

    @property
    def overhead(self) -> int:
        return self.communication + self.dispatch


def sweep(
    stats: TamStats, latencies: Sequence[int] = (2, 4, 6, 8, 12, 16)
) -> List[LatencyPoint]:
    """Reprice ``stats`` at each off-chip read latency."""
    points = []
    for dead_cycles in latencies:
        model = OPTIMIZED_OFF_CHIP.with_off_chip_latency(dead_cycles)
        result = breakdown(stats, model, table=cost_table_at_latency(dead_cycles))
        points.append(
            LatencyPoint(
                dead_cycles=dead_cycles,
                communication=result.communication,
                dispatch=result.dispatch,
                total=result.total,
            )
        )
    return points


def relative_overheads(points: List[LatencyPoint]) -> Dict[int, float]:
    """Overhead at each latency, relative to the 2-cycle baseline."""
    baseline = next(
        (p for p in points if p.dead_cycles == BASELINE_DEAD_CYCLES), points[0]
    )
    return {p.dead_cycles: p.overhead / baseline.overhead for p in points}


def render_sweep(program: str, points: List[LatencyPoint]) -> str:
    ratios = relative_overheads(points)
    table = render_table(
        ["latency (dead cycles)", "dispatch", "other comm", "overhead", "vs 2-cycle"],
        [
            [p.dead_cycles, p.dispatch, p.communication, p.overhead, f"{ratios[p.dead_cycles]:.2f}x"]
            for p in points
        ],
        title=f"Off-chip read latency sweep - {program} (optimized off-chip model)",
    )
    at8 = ratios.get(8)
    note = (
        f"\noverhead at 8 cycles = {at8:.2f}x the 2-cycle baseline "
        "(paper: communication costs 'will double')"
        if at8
        else ""
    )
    return table + note


def _exp_params(options) -> dict:
    return {
        "program": "matmul",
        "size": 100 if options.paper_scale else 24,
        "nodes": 16,
        "latencies": (2, 4, 6, 8, 12, 16),
    }


def _exp_compute(params: dict) -> dict:
    stats = run_program(
        params["program"], size=params["size"], nodes=params["nodes"]
    )
    return {"points": sweep(stats, params["latencies"])}


def _exp_artifact(params: dict, payload: dict) -> dict:
    points = payload["points"]
    return {
        "points": [
            {**to_jsonable(p), "overhead": p.overhead} for p in points
        ],
        "relative_overheads": relative_overheads(points),
        "baseline_dead_cycles": BASELINE_DEAD_CYCLES,
    }


register(
    ExperimentSpec(
        name="latency",
        title="Off-chip latency sensitivity (Section 4.2.3)",
        produces=("points", "relative_overheads"),
        params=_exp_params,
        programs=lambda params: (
            resolve_key(params["program"], params["size"], params["nodes"]),
        ),
        compute=_exp_compute,
        render=lambda params, payload: render_sweep(
            params["program"], payload["points"]
        ),
        artifact=_exp_artifact,
    )
)


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description="Off-chip latency sweep")
    parser.add_argument("program", nargs="?", default="matmul")
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument(
        "--latencies", type=int, nargs="+", default=[2, 4, 6, 8, 12, 16]
    )
    args = parser.parse_args(argv)
    stats = run_program(args.program, size=args.size)
    print(render_sweep(args.program, sweep(stats, args.latencies)))


if __name__ == "__main__":  # pragma: no cover
    main()
