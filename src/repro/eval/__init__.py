"""Evaluation harnesses that regenerate the paper's tables and figures."""
