"""Evaluation harnesses that regenerate the paper's tables and figures.

This package is the public face of the evaluation layer.  The names
exported here are the supported surface for examples, tests, and
benchmarks — prefer them over deep-importing ``repro.eval.<module>``.

Exports resolve lazily (:pep:`562`), so importing the package does not
pull in every study module; spec registration for the experiment
:mod:`~repro.exp.registry` happens via
:func:`repro.exp.registry.load_all`, which the ``python -m repro``
driver calls explicitly.  Lazy resolution also keeps the per-study
CLIs (``python -m repro.eval.figure12`` …) free of the runpy
already-imported warning.
"""

from repro.exp import registry
from repro.exp.runcache import (
    DEFAULT_SIZES,
    PAPER_SIZES,
    ProgramKey,
    resolve_key,
    run_program,
)

# Public name -> (defining module, attribute there).  An alias such as
# ``grain_sweep`` renames a module-local ``sweep`` so the flat namespace
# stays unambiguous.
_LAZY_EXPORTS = {
    # Table 1.
    "collect_rows": ("repro.eval.table1", "collect_rows"),
    "render_report": ("repro.eval.table1", "render_report"),
    "rows_as_records": ("repro.eval.table1", "rows_as_records"),
    # Round trips.
    "collect_roundtrips": ("repro.eval.roundtrip", "collect"),
    "render_roundtrips": ("repro.eval.roundtrip", "render_roundtrips"),
    "roundtrip_cost": ("repro.eval.roundtrip", "roundtrip_cost"),
    # Throughput.
    "STANDARD_STREAM": ("repro.eval.throughput", "STANDARD_STREAM"),
    "collect_throughput": ("repro.eval.throughput", "collect"),
    "render_throughput": ("repro.eval.throughput", "render_throughput"),
    # Figure 12.
    "HeadlineMetrics": ("repro.eval.figure12", "HeadlineMetrics"),
    "headline_metrics": ("repro.eval.figure12", "headline_metrics"),
    "render_figure": ("repro.eval.figure12", "render_figure"),
    # Latency sweep.
    "cost_table_at_latency": ("repro.eval.latency", "cost_table_at_latency"),
    "latency_sweep": ("repro.eval.latency", "sweep"),
    "relative_overheads": ("repro.eval.latency", "relative_overheads"),
    "render_sweep": ("repro.eval.latency", "render_sweep"),
    # Ablation.
    "ABLATIONS": ("repro.eval.ablation", "ABLATIONS"),
    "render_ablation": ("repro.eval.ablation", "render_ablation"),
    "run_ablation": ("repro.eval.ablation", "run_ablation"),
    # Grain.
    "crossover_grain": ("repro.eval.grain", "crossover_grain"),
    "grain_sweep": ("repro.eval.grain", "sweep"),
    "render_grain": ("repro.eval.grain", "render_grain"),
    # Survey.
    "collect_survey": ("repro.eval.survey", "collect_survey"),
    "render_survey": ("repro.eval.survey", "render_survey"),
    # Multi-tenant serving.
    "compute_multitenant": ("repro.eval.multitenant", "compute_multitenant"),
    "multitenant_metrics": ("repro.eval.multitenant", "multitenant_metrics"),
    "multitenant_params": ("repro.eval.multitenant", "multitenant_params"),
    "render_multitenant": ("repro.eval.multitenant", "render_multitenant"),
}

__all__ = [
    "registry",
    "DEFAULT_SIZES",
    "PAPER_SIZES",
    "ProgramKey",
    "resolve_key",
    "run_program",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache so the lookup runs once
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
