"""Steady-state message-handling throughput (derived artifact).

Runs the composed service loop (dispatch inlined into every handler tail,
as Section 2.2.3's overlap implies) over a standard message stream and
reports, per interface model, the measured cycles per message and the
throughput at a nominal clock.  Because the loop is built from the
Table 1 kernels themselves, its numbers compose the table with zero
slack — the consistency the test suite asserts.

Usage::

    python -m repro.eval.throughput
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.exp.registry import register
from repro.exp.spec import ExperimentSpec
from repro.impls.base import ALL_MODELS
from repro.kernels.loop import measure_stream
from repro.utils.tables import render_table

STANDARD_STREAM: Sequence[str] = (
    "send1",
    "read",
    "write",
    "send1",
    "read",
    "send1",
    "write",
    "read",
)
"""A procedure-call-plus-remote-memory mix, 8 messages."""

CLOCK_MHZ = 25.0


@dataclass
class ThroughputRow:
    model_key: str
    cycles: int
    handled: int

    @property
    def cycles_per_message(self) -> float:
        return self.cycles / self.handled

    @property
    def messages_per_second(self) -> float:
        return CLOCK_MHZ * 1e6 / self.cycles_per_message


def collect(stream: Sequence[str] = STANDARD_STREAM) -> List[ThroughputRow]:
    rows = []
    for model in ALL_MODELS:
        measurement = measure_stream(model, list(stream))
        rows.append(
            ThroughputRow(model.key, measurement.cycles, measurement.handled)
        )
    return rows


def render_throughput(rows: List[ThroughputRow] | None = None) -> str:
    rows = rows if rows is not None else collect()
    body = [
        [
            row.model_key,
            row.cycles,
            f"{row.cycles_per_message:.1f}",
            f"{row.messages_per_second / 1e6:.2f}M",
        ]
        for row in rows
    ]
    table = render_table(
        ["model", "cycles (8 msgs)", "cycles/message", f"msgs/s @ {CLOCK_MHZ:.0f} MHz"],
        body,
        title="Steady-state service-loop throughput (composed from Table 1 kernels)",
    )
    fastest = min(rows, key=lambda r: r.cycles_per_message)
    slowest = max(rows, key=lambda r: r.cycles_per_message)
    return (
        f"{table}\n"
        f"{fastest.model_key} handles a message every "
        f"{fastest.cycles_per_message:.1f} cycles - "
        f"{slowest.cycles_per_message / fastest.cycles_per_message:.1f}x the "
        f"rate of {slowest.model_key}."
    )


def _exp_artifact(params: dict, payload: dict) -> dict:
    return {
        "models": [
            {
                "model": row.model_key,
                "cycles": row.cycles,
                "handled": row.handled,
                "cycles_per_message": row.cycles_per_message,
                "messages_per_second": row.messages_per_second,
            }
            for row in payload["rows"]
        ]
    }


register(
    ExperimentSpec(
        name="throughput",
        title="Steady-state service-loop throughput (derived)",
        produces=("models",),
        params=lambda options: {
            "stream": tuple(STANDARD_STREAM),
            "clock_mhz": CLOCK_MHZ,
        },
        compute=lambda params: {"rows": collect(params["stream"])},
        render=lambda params, payload: render_throughput(payload["rows"]),
        artifact=_exp_artifact,
    )
)


def main(argv=None) -> None:  # pragma: no cover - CLI
    print(render_throughput())


if __name__ == "__main__":  # pragma: no cover
    main()
