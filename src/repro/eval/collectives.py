"""NIC-offloaded vs processor-driven collectives (extension).

The paper's interface dispatches a type-0 message straight to its
handler IP (Figure 7 case 2).  This section asks what that buys for
*collective* operations: barrier, broadcast, reduce, and allreduce are
expressed as handler programs (:mod:`repro.collectives`) and each cell
of the grid runs the same collective twice —

* **nic** — the steps execute at the interface
  (:class:`~repro.collectives.engine.NicHandlerEngine`); the processor
  only enters the collective and observes completion;
* **proc** — the identical steps run as node inlets under the cluster
  service loop, the conventional processor-driven design.

Both variants share the step functions, the combining tree, and
order-independent combine ops, so their per-node results must be
*identical* — the harness checks this every run — and their event counts
(steps handled, messages sent, values combined) match too.  What differs
is where the work ran, priced post hoc per Table 1 interface model by
:mod:`repro.collectives.costs`: the NIC variant's processor cycles are
the entry/exit term alone, strictly below the processor-driven variant
whenever any message moved.

Default scale is the CI smoke grid (16 nodes); ``--paper-scale`` sweeps
16 / 64 / 256-node meshes with both the binary combining tree and the
flat (star) tree.

Usage::

    python -m repro.eval.collectives            # smoke grid, text report
    python -m repro --only collectives --paper-scale
    python benchmarks/bench_collectives.py --smoke   # perfdb recording
"""

from __future__ import annotations

from typing import Dict, List

from repro.collectives import (
    COLLECTIVES,
    CombiningTree,
    expected_result,
    run_nic_collective,
    run_proc_collective,
)
from repro.collectives.costs import price_run
from repro.errors import EvaluationError
from repro.exp.registry import register
from repro.exp.spec import EvalOptions, ExperimentSpec
from repro.impls.base import ALL_MODELS, OPTIMIZED_REGISTER
from repro.network.topology import Mesh2D
from repro.utils.tables import render_table

#: (nodes, mesh side) grid cells; paper scale matches the netsweep ladder.
SMOKE_NODES = (16,)
FULL_NODES = (16, 64, 256)

#: Tree arities per cell: the binary combining tree and (paper-scale
#: only) the flat star tree — the no-combining baseline.
SMOKE_ARITIES = (2,)


def collectives_params(options: EvalOptions) -> Dict:
    """The grid derived from the CLI options."""
    if options.paper_scale:
        return {
            "node_counts": list(FULL_NODES),
            "kinds": list(COLLECTIVES),
            "arities": [2, "flat"],
            "op": "sum",
            "model_keys": [model.key for model in ALL_MODELS],
        }
    return {
        "node_counts": list(SMOKE_NODES),
        "kinds": list(COLLECTIVES),
        "arities": list(SMOKE_ARITIES),
        "op": "sum",
        "model_keys": [model.key for model in ALL_MODELS],
    }


def _mesh_for(n_nodes: int) -> Mesh2D:
    side = int(round(n_nodes ** 0.5))
    if side * side != n_nodes:
        raise EvaluationError(f"collectives grid wants square meshes, got {n_nodes}")
    return Mesh2D(side, side)


def metric_name(kind: str, n_nodes: int, arity, what: str) -> str:
    """Perfdb metric name for one cell, e.g. ``coll_barrier64_a2_overlap``."""
    return f"coll_{kind}{n_nodes}_a{arity}_{what}"


def _run_cell(kind: str, n_nodes: int, arity, op: str, model_keys) -> Dict:
    real_arity = n_nodes - 1 if arity == "flat" else arity
    values = list(range(n_nodes))
    nic = run_nic_collective(
        kind, _mesh_for(n_nodes), op=op, values=values, arity=real_arity
    )
    proc = run_proc_collective(
        kind, _mesh_for(n_nodes), op=op, values=values, arity=real_arity
    )
    expected = expected_result(
        kind, op, CombiningTree(n_nodes, arity=real_arity), values
    )
    if not (nic.results == proc.results == expected):
        raise EvaluationError(
            f"{kind}@{n_nodes} (arity {arity}): NIC and processor variants "
            "disagree on results"
        )
    if nic.events != proc.events:
        raise EvaluationError(
            f"{kind}@{n_nodes} (arity {arity}): event counts diverge "
            f"({nic.events} vs {proc.events})"
        )
    priced = {}
    for model in ALL_MODELS:
        if model.key not in model_keys:
            continue
        nic_price = price_run(nic, model)
        proc_price = price_run(proc, model)
        priced[model.key] = {
            "nic_proc_cycles": nic_price.proc_cycles,
            "proc_proc_cycles": proc_price.proc_cycles,
            "nic_overlap": nic_price.overlap,
            "offload_factor": round(
                proc_price.proc_cycles / nic_price.proc_cycles, 3
            )
            if nic_price.proc_cycles
            else 0.0,
        }
    return {
        "kind": kind,
        "n_nodes": n_nodes,
        "arity": arity,
        "results_identical": True,
        "events": dict(nic.events),
        "nic_makespan": nic.cycles,
        "proc_makespan": proc.cycles,
        "fabric_delivered": nic.fabric_delivered,
        "fabric_hops": nic.fabric_hops,
        "case2_dispatches": nic.dispatch.case2,
        "boundary_dispatches": nic.dispatch.boundary,
        "priced": priced,
    }


def compute_collectives(params: Dict) -> Dict:
    """Run the whole grid; every cell carries both variants' accounting."""
    cells: List[Dict] = []
    for n_nodes in params["node_counts"]:
        for kind in params["kinds"]:
            for arity in params["arities"]:
                cells.append(
                    _run_cell(
                        kind, n_nodes, arity, params["op"], params["model_keys"]
                    )
                )
    return {
        "op": params["op"],
        "models": list(params["model_keys"]),
        "cells": cells,
    }


def collectives_metrics(payload: Dict) -> Dict[str, float]:
    """Flatten the grid into perfdb metrics (optimized-register pricing)."""
    metrics: Dict[str, float] = {}
    key = OPTIMIZED_REGISTER.key
    for cell in payload["cells"]:
        kind, n, arity = cell["kind"], cell["n_nodes"], cell["arity"]
        priced = cell["priced"].get(key)
        if priced is None:
            continue
        metrics[metric_name(kind, n, arity, "nic_proc_cycles")] = priced[
            "nic_proc_cycles"
        ]
        metrics[metric_name(kind, n, arity, "proc_proc_cycles")] = priced[
            "proc_proc_cycles"
        ]
        metrics[metric_name(kind, n, arity, "overlap")] = priced["nic_overlap"]
    return metrics


def render_collectives(params: Dict, payload: Dict) -> str:
    key = OPTIMIZED_REGISTER.key
    rows = []
    for cell in payload["cells"]:
        priced = cell["priced"].get(key, {})
        rows.append(
            [
                cell["kind"],
                str(cell["n_nodes"]),
                str(cell["arity"]),
                str(cell["events"]["handled"]),
                str(cell["events"]["sends"]),
                f"{cell['nic_makespan']}/{cell['proc_makespan']}",
                str(priced.get("nic_proc_cycles", "-")),
                str(priced.get("proc_proc_cycles", "-")),
                f"{priced.get('nic_overlap', 0.0):.3f}",
                "yes" if cell["results_identical"] else "NO",
            ]
        )
    table = render_table(
        [
            "collective",
            "nodes",
            "arity",
            "steps",
            "msgs",
            "makespan n/p",
            "proc cyc (nic)",
            "proc cyc (proc)",
            "overlap",
            "identical",
        ],
        rows,
        title=(
            f"NIC-offloaded vs processor-driven collectives · op={payload['op']} "
            f"· pricing model {key}"
        ),
    )
    note = (
        "Both variants execute the identical handler programs over the same "
        "combining tree; 'identical' confirms per-node results matched the "
        "closed form.  Processor cycles are priced per Table 1 kernels: the "
        "NIC variant charges the processor only entry + completion, so its "
        "column is strictly lower whenever the collective moved a message.  "
        "overlap = fraction of total protocol work the processor did not "
        "perform.  Full per-model pricing for every cell is in the payload."
    )
    return table + "\n\n" + note


register(
    ExperimentSpec(
        name="collectives",
        title="NIC-offloaded collectives via MsgIp handler programs (extension)",
        produces=("op", "models", "cells"),
        params=collectives_params,
        compute=compute_collectives,
        render=render_collectives,
    )
)


def main(argv=None) -> None:  # pragma: no cover - CLI
    params = collectives_params(EvalOptions())
    print(render_collectives(params, compute_collectives(params)))


if __name__ == "__main__":  # pragma: no cover
    main()
