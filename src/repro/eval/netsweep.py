"""Topology × routing × load: the synthetic-traffic network sweep.

The paper's flow-control story (Section 2.1.1) was only ever told at
~16 nodes with dimension-order routing.  This section stress-tests it
at network scale, the way the gem5/Garnet studies sweep 64- and
256-core meshes: for each topology × routing policy, Bernoulli-inject a
synthetic pattern at a ladder of rates and record the latency-vs-load
curve and the saturation throughput (the knee where accepted load stops
tracking offered load and latency departs).

Default scale is the CI smoke grid — an 8×8 mesh under uniform traffic
at three injection rates across all three routing policies
(:mod:`repro.network.routing`).  ``--paper-scale`` runs the full grid:
{mesh, torus} × {dimension-order, adaptive-random, escape-vc} ×
four rates at 64 **and** 256 nodes.

Usage::

    python -m repro.eval.netsweep              # smoke grid, text report
    python -m repro --only netsweep --paper-scale
    python benchmarks/bench_netsweep.py --smoke   # perfdb recording
"""

from __future__ import annotations

from typing import Dict, List

from repro.exp.registry import register
from repro.exp.spec import EvalOptions, ExperimentSpec
from repro.network.routing import POLICY_NAMES, make_policy
from repro.network.traffic import run_traffic_named, saturation_throughput
from repro.utils.tables import render_table

#: The full (paper-scale) grid's node counts, per topology kind.
FULL_CONFIGS = (("mesh", 64), ("torus", 64), ("mesh", 256), ("torus", 256))

#: The smoke grid: one 8×8 mesh, three rates (CI's perf-gate feed).
SMOKE_CONFIGS = (("mesh", 64),)
SMOKE_RATES = (0.05, 0.15, 0.30)
FULL_RATES = (0.05, 0.20, 0.35, 0.50)


def netsweep_params(options: EvalOptions) -> Dict:
    """The sweep grid derived from the CLI options."""
    if options.paper_scale:
        return {
            "configs": list(FULL_CONFIGS),
            "policies": list(POLICY_NAMES),
            "rates": list(FULL_RATES),
            "pattern": "uniform",
            "seed": 42,
            "warmup_cycles": 200,
            "measure_cycles": 600,
        }
    return {
        "configs": list(SMOKE_CONFIGS),
        "policies": list(POLICY_NAMES),
        "rates": list(SMOKE_RATES),
        "pattern": "uniform",
        "seed": 42,
        "warmup_cycles": 100,
        "measure_cycles": 300,
    }


def metric_name(kind: str, n_nodes: int, policy: str, rate: float, what: str) -> str:
    """The perfdb metric name for one sweep point, e.g.
    ``mesh64_escape-vc_inj0.2_throughput`` — distinct per configuration
    so curves from different grid cells never collide in the database."""
    return f"{kind}{n_nodes}_{policy}_inj{rate:g}_{what}"


def compute_netsweep(params: Dict) -> Dict:
    """Run the whole grid; returns curves keyed by configuration.

    Each curve is one (topology, nodes, policy) cell: its points are the
    :func:`~repro.network.traffic.run_traffic` payloads per injection
    rate, plus the cell's saturation throughput.  A fresh seeded policy
    is built per run so every cell is independently reproducible.
    """
    curves: List[Dict] = []
    for kind, n_nodes in params["configs"]:
        for policy_name in params["policies"]:
            points = []
            for rate in params["rates"]:
                points.append(
                    run_traffic_named(
                        kind,
                        n_nodes,
                        make_policy(policy_name, seed=params["seed"]),
                        params["pattern"],
                        rate,
                        seed=params["seed"],
                        warmup_cycles=params["warmup_cycles"],
                        measure_cycles=params["measure_cycles"],
                    )
                )
            curves.append(
                {
                    "topology_kind": kind,
                    "n_nodes": n_nodes,
                    "routing": policy_name,
                    "points": points,
                    "saturation_throughput": round(
                        saturation_throughput(points), 6
                    ),
                }
            )
    return {
        "pattern": params["pattern"],
        "rates": list(params["rates"]),
        "curves": curves,
    }


def sweep_metrics(payload: Dict) -> Dict[str, float]:
    """Flatten the curves into perfdb metrics (see :func:`metric_name`)."""
    metrics: Dict[str, float] = {}
    for curve in payload["curves"]:
        kind = curve["topology_kind"]
        n = curve["n_nodes"]
        policy = curve["routing"]
        for point in curve["points"]:
            rate = point["offered_rate"]
            metrics[metric_name(kind, n, policy, rate, "throughput")] = point[
                "throughput"
            ]
            metrics[metric_name(kind, n, policy, rate, "latency")] = point[
                "mean_latency"
            ]
        metrics[f"{kind}{n}_{policy}_saturation"] = curve["saturation_throughput"]
    return metrics


def render_netsweep(params: Dict, payload: Dict) -> str:
    blocks = []
    for curve in payload["curves"]:
        rows = [
            [
                f"{point['offered_rate']:.2f}",
                f"{point['accepted_rate']:.4f}",
                f"{point['throughput']:.4f}",
                f"{point['mean_latency']:.1f}",
                f"{point['mean_hops']:.2f}",
                "deadlock"
                if point["deadlock"]
                else ("ok" if point["drained"] else "stuck"),
            ]
            for point in curve["points"]
        ]
        blocks.append(
            render_table(
                ["offered", "accepted", "throughput", "latency", "hops", "drain"],
                rows,
                title=(
                    f"{curve['topology_kind']} {curve['n_nodes']} nodes · "
                    f"{curve['routing']} · {payload['pattern']} traffic "
                    f"(saturation {curve['saturation_throughput']:.4f})"
                ),
            )
        )
    blocks.append(
        "Rates are messages/node/cycle.  accepted < offered means the "
        "network saturated and backpressure reached the processors; the "
        "latency column is the latency-vs-load curve the perfdb records.  "
        "drain=deadlock marks runs whose post-injection drain closed a "
        "buffer-wait cycle (expected for adaptive-random past saturation "
        "— it has no escape path); the cycle itself is in the payload."
    )
    return "\n\n".join(blocks)


register(
    ExperimentSpec(
        name="netsweep",
        title="Topology x routing x load sweep (extension, synthetic traffic)",
        produces=("pattern", "rates", "curves"),
        params=netsweep_params,
        compute=compute_netsweep,
        render=render_netsweep,
    )
)


def main(argv=None) -> None:  # pragma: no cover - CLI
    params = netsweep_params(EvalOptions())
    print(render_netsweep(params, compute_netsweep(params)))


if __name__ == "__main__":  # pragma: no cover
    main()
