"""Hot-spot flow control: the Section 2.1.1 backpressure chain, traced.

All but one node of a mesh flood the remaining node faster than its
processor services messages.  The paper describes what must happen next:

    "its input message queue backs up into the network.  As the network
    becomes clogged, processors can no longer transmit messages and
    eventually their output queues fill up.  If a processor then tries
    to send a message, it will be forced to wait."

This study runs that workload on the cycle-level fabric with the
observability layer (:mod:`repro.obs`) attached and reports the chain as
a timeline of first occurrences — input queue almost-full, first refused
delivery, network peak occupancy, first sender output queue almost-full,
first SEND stall — each timestamp read from the trace and time-series
the run itself produced.  With ``--trace`` the driver also writes the
Chrome ``trace_event`` JSON and the metrics time-series next to the
other artifacts, so the whole cascade can be inspected in a trace viewer.

Usage::

    python -m repro.eval.flowcontrol          # text report
    python -m repro --only flowcontrol --trace
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

from repro.errors import NetworkError
from repro.exp.registry import register
from repro.exp.spec import EvalOptions, ExperimentSpec
from repro.network.fabric import Fabric
from repro.network.topology import Mesh2D
from repro.nic.interface import NetworkInterface, SendResult
from repro.nic.messages import pack_destination
from repro.obs.metrics import MetricsRecorder
from repro.obs.profiler import SimProfiler, reconcile, render_profile
from repro.obs.tracer import (
    ALL_KINDS,
    NEXT,
    REFUSE,
    SEND,
    SEND_STALL,
    Tracer,
)
from repro.obs.breakdown import lineage_report, write_lineage
from repro.obs.chrome import write_chrome_trace
from repro.obs.lineage import LineageTracker
from repro.sim import SimComponent, SimKernel
from repro.utils.tables import render_table

#: Message type used by the synthetic hot-spot traffic.
HOTSPOT_MTYPE = 2

MAX_CYCLES = 200_000


class _Sender(SimComponent):
    """One flooding node: offers a message to the hot node on its slot.

    Offer slots are the cycles where ``(cycle + node) % offer_interval``
    is zero — staggered across senders so injections do not arrive in
    lockstep waves.  Between slots the sender sleeps on a timed wake, so
    the kernel never scans it; once its quota is sent it sleeps for good.
    """

    def __init__(
        self, fabric: Fabric, node: int, hot: int, quota: int, interval: int
    ) -> None:
        self.name = f"sender{node}"
        self.interface = fabric.interface(node)
        self.node = node
        self.destination = pack_destination(hot)
        self.remaining = quota
        self.interval = interval
        self.handle = None  # bound by run_hotspot after registration

    def first_slot(self) -> int:
        """The first cycle >= 1 on which this sender may offer."""
        slot = (-self.node) % self.interval
        return slot if slot else self.interval

    def tick(self, cycle: int) -> None:
        ni = self.interface
        ni.write_output(0, self.destination)
        ni.write_output(1, self.node)
        if ni.send(HOTSPOT_MTYPE) is SendResult.SENT:
            self.remaining -= 1
        if self.remaining:
            self.handle.wake_at(cycle + self.interval)
        else:
            self.handle.sleep()

    def quiescent(self) -> bool:
        return self.remaining == 0

    def snapshot(self):
        return {
            "remaining": self.remaining,
            "output_queue": self.interface.output_queue.depth,
        }


class _Receiver(SimComponent):
    """The hot node's processor: drains one message per service slot."""

    name = "receiver"

    def __init__(self, fabric: Fabric, hot: int, interval: int) -> None:
        self.interface = fabric.interface(hot)
        self.interval = interval
        self.serviced = 0
        self.handle = None

    def tick(self, cycle: int) -> None:
        if self.interface.msg_valid:
            self.interface.next()
            self.serviced += 1
        self.handle.wake_at(cycle + self.interval)

    def quiescent(self) -> bool:
        return self.interface.input_queue.is_empty and not self.interface.msg_valid

    def snapshot(self):
        return {
            "serviced": self.serviced,
            "input_queue": self.interface.input_queue.depth,
            "msg_valid": self.interface.msg_valid,
        }


class _FabricClock(SimComponent):
    """The fabric under the hot-spot kernel: steps every cycle (it is the
    workload's clock and its metrics sampler) and tracks peak occupancy."""

    name = "fabric"

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.peak_in_flight = 0

    def tick(self, cycle: int) -> None:
        self.fabric.step()
        in_flight = self.fabric.in_flight()
        if in_flight > self.peak_in_flight:
            self.peak_in_flight = in_flight

    def quiescent(self) -> bool:
        return self.fabric.pending() == 0

    def snapshot(self):
        return self.fabric.snapshot()


def hotspot_params(options: EvalOptions) -> Dict:
    """The hot-spot configuration derived from the CLI options.

    Queues are kept small (8 deep, threshold 6) and links narrow so the
    cascade completes in a few thousand cycles; ``--paper-scale`` triples
    the offered load, which lengthens the congested phase but moves none
    of the qualitative behaviour.
    """
    return {
        "width": 4,
        "height": 4,
        "hot_node": 0,
        "messages_per_sender": 60 if options.paper_scale else 20,
        "offer_interval": 3,
        "service_interval": 8,
        "input_capacity": 8,
        "output_capacity": 8,
        "queue_threshold": 6,
        "link_buffer_depth": 2,
        "serialization_cycles": 2,
        "trace_dir": (
            options.trace_dir if (options.trace or options.lineage) else None
        ),
        "profile_sim": options.profile_sim,
        "lineage": options.lineage,
    }


def run_hotspot(
    params: Dict,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRecorder] = None,
    profiler: Optional[SimProfiler] = None,
    lineage=None,
) -> Dict:
    """Run the hot-spot workload; returns a plain (picklable) payload.

    Every node except ``hot_node`` offers one message to the hot node
    every ``offer_interval`` cycles under the STALL full-queue policy;
    the hot node's processor drains one message every
    ``service_interval`` cycles.  The offered rate per sender stays
    below its own injection bandwidth (one message per
    ``serialization_cycles``), so output queues can only fill — and
    SENDs can only stall — through backpressure from the hot spot, not
    through self-congestion at the injection channel.

    The workload runs on a :class:`~repro.sim.kernel.SimKernel`: each
    sender and the receiver are timed-wake components (idle-skipped
    between their offer/service slots), the fabric ticks every cycle,
    and the kernel's default quiescence stop ends the run exactly when
    every offered message has been sent, delivered, and serviced.  A run
    exceeding ``MAX_CYCLES`` raises with the kernel's diagnostic
    snapshot — per-queue occupancy, in-flight count, and per-sender
    remaining quota — instead of a bare timeout.
    """
    hot = params["hot_node"]
    topology = Mesh2D(params["width"], params["height"])
    interfaces = [
        NetworkInterface(
            node=node,
            input_capacity=params["input_capacity"],
            output_capacity=params["output_capacity"],
        )
        for node in range(topology.n_nodes)
    ]
    for ni in interfaces:
        ni.control["iq_threshold"] = params["queue_threshold"]
        ni.control["oq_threshold"] = params["queue_threshold"]
    fabric = Fabric(
        topology,
        interfaces,
        link_buffer_depth=params["link_buffer_depth"],
        serialization_cycles=params["serialization_cycles"],
        tracer=tracer,
        metrics=metrics,
        lineage=lineage,
    )

    # Kernel service order mirrors the workload's intra-cycle order:
    # senders in ascending node id, then the receiver, then the fabric.
    kernel = SimKernel()
    senders = [
        _Sender(
            fabric,
            node,
            hot,
            quota=params["messages_per_sender"],
            interval=params["offer_interval"],
        )
        for node in range(topology.n_nodes)
        if node != hot
    ]
    for sender in senders:
        sender.handle = kernel.register(sender)
        sender.handle.wake_at(sender.first_slot())
    receiver = _Receiver(fabric, hot, interval=params["service_interval"])
    receiver.handle = kernel.register(receiver)
    receiver.handle.wake_at(receiver.interval)
    clock = _FabricClock(fabric)
    kernel.register(clock)
    if profiler is not None:
        kernel.attach_profiler(profiler)

    result = kernel.run(
        max_cycles=MAX_CYCLES, stall_error=NetworkError, label="hot-spot workload"
    )
    offered = params["messages_per_sender"] * len(senders)
    serviced = receiver.serviced
    assert serviced == offered, f"serviced {serviced} of {offered} messages"

    sender_nodes = [sender.node for sender in senders]
    payload: Dict = {
        "cycles": result.cycles,
        "offered": offered,
        "serviced": serviced,
        "delivered": fabric.stats.delivered,
        "deliveries_refused": fabric.stats.deliveries_refused,
        "mean_hops": round(fabric.stats.mean_hops, 3),
        "mean_latency": round(fabric.stats.mean_latency, 3),
        "peak_in_flight": clock.peak_in_flight,
        "sends": sum(ni.stats.sends for ni in fabric.interfaces),
        "send_stalls": sum(ni.stats.send_stalls for ni in fabric.interfaces),
        "refused": sum(ni.stats.refused for ni in fabric.interfaces),
        "injected": sum(r.stats.injected for r in fabric.routers),
        "forwarded": sum(r.stats.forwarded for r in fabric.routers),
        "ejected": sum(r.stats.ejected for r in fabric.routers),
        "blocked_moves": sum(r.stats.blocked_moves for r in fabric.routers),
        "hot_iq": receiver.interface.input_queue.stats.snapshot(),
        "sender_oq_peak": max(
            fabric.interface(n).output_queue.stats.peak_depth
            for n in sender_nodes
        ),
        "sender_oq_crossings": sum(
            fabric.interface(n).output_queue.stats.threshold_crossings
            for n in sender_nodes
        ),
    }
    payload["chain"] = _chain_timeline(hot, tracer, metrics)
    if tracer is not None:
        payload["trace"] = {
            "events": len(tracer),
            "emitted": tracer.emitted,
            "dropped": tracer.dropped,
            "counts": {kind: tracer.count(kind) for kind in ALL_KINDS},
        }
    return payload


def _chain_timeline(
    hot: int, tracer: Optional[Tracer], metrics: Optional[MetricsRecorder]
) -> Dict[str, Optional[int]]:
    """First-occurrence cycles of each stage of the backpressure chain."""
    chain: Dict[str, Optional[int]] = {
        "hot_iq_almost_full": None,
        "first_refused_delivery": None,
        "first_sender_oq_almost_full": None,
        "first_send_stall": None,
    }
    if metrics is not None:
        chain["hot_iq_almost_full"] = metrics.first_crossing("iq", node=hot)
        chain["first_sender_oq_almost_full"] = metrics.first_crossing("oq")
    if tracer is not None:
        for event in tracer:
            if event.kind == REFUSE and chain["first_refused_delivery"] is None:
                chain["first_refused_delivery"] = event.ts
            if event.kind == SEND_STALL and chain["first_send_stall"] is None:
                chain["first_send_stall"] = event.ts
            if (
                chain["first_refused_delivery"] is not None
                and chain["first_send_stall"] is not None
            ):
                break
    return chain


def compute_flowcontrol(params: Dict) -> Dict:
    """Run the traced hot-spot; optionally write the trace artifacts.

    The tracer, metrics recorder, and profiler live only inside this
    function — the payload carries plain dictionaries so the section
    stays picklable for the ``--jobs`` fan-out.
    """
    tracer = Tracer()
    metrics = MetricsRecorder()
    profiler = (
        SimProfiler(sample_interval=64) if params.get("profile_sim") else None
    )
    lineage = LineageTracker(origin="flowcontrol") if params.get("lineage") else None
    payload = run_hotspot(
        params, tracer=tracer, metrics=metrics, profiler=profiler, lineage=lineage
    )
    if profiler is not None:
        metrics.feed_profiler(profiler)
        payload["profile"] = profiler.to_dict()
    if lineage is not None:
        # Strict by construction: the hot-spot run retires every message,
        # so a gap or overlap anywhere in the span store is a real bug.
        report = lineage_report(lineage, strict=True)
        payload["lineage"] = {
            "reconciliation": report["reconciliation"],
            "breakdown": report["breakdown"],
            "critical_path": {
                key: report["critical_path"][key]
                for key in ("length", "max_chain", "duration", "phases")
            },
        }
    trace_dir = params.get("trace_dir")
    if trace_dir:
        directory = Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        trace_path = directory / "flowcontrol_trace.json"
        write_chrome_trace(trace_path, tracer, metrics, profiler, lineage=lineage)
        metrics_path = directory / "flowcontrol_metrics.json"
        metrics_path.write_text(
            json.dumps(metrics.to_dict(), indent=2) + "\n"
        )
        trace_files = [str(trace_path), str(metrics_path)]
        if lineage is not None:
            lineage_path = directory / "lineage.json"
            write_lineage(str(lineage_path), lineage)
            trace_files.append(str(lineage_path))
        payload["trace_files"] = trace_files
    return payload


def reconcile_hotspot(
    profiler: SimProfiler, tracer: Tracer, payload: Dict
) -> None:
    """Cross-validate the profiler's tick attribution against the trace.

    Opt-in (tests and debugging, never the hot path).  The invariants
    hold by construction of the workload:

    * every sender tick performs exactly one SEND attempt, so the
      senders' serviced ticks must equal the traced ``send`` plus
      ``stall`` events;
    * the fabric ticks every cycle, so its serviced ticks must equal the
      run's cycle count;
    * the receiver retires one message per successful ``NEXT``, so the
      traced ``next`` events must equal the serviced-message total.

    Raises :class:`~repro.errors.ReconciliationError` on any mismatch.
    """
    sender_ticks = 0
    fabric_ticks = None
    for profile in profiler.kernel_components:
        if profile.name.startswith("sender"):
            sender_ticks += profile.ticks
        elif profile.name == "fabric":
            fabric_ticks = profile.ticks
    reconcile(
        {
            "sender ticks vs send attempts": (
                sender_ticks,
                tracer.count(SEND) + tracer.count(SEND_STALL),
            ),
            "fabric ticks vs run cycles": (fabric_ticks, payload["cycles"]),
            "serviced messages vs NEXT events": (
                payload["serviced"],
                tracer.count(NEXT),
            ),
        }
    )


def render_flowcontrol(params: Dict, payload: Dict) -> str:
    chain = payload["chain"]
    timeline_rows = [
        ["hot-node input queue almost-full", chain["hot_iq_almost_full"]],
        ["first delivery refused (network backup)", chain["first_refused_delivery"]],
        ["first sender output queue almost-full", chain["first_sender_oq_almost_full"]],
        ["first SEND stall", chain["first_send_stall"]],
        ["all messages serviced", payload["cycles"]],
    ]
    timeline = render_table(
        ["stage of the Section 2.1.1 cascade", "cycle"],
        [[stage, "-" if cycle is None else cycle] for stage, cycle in timeline_rows],
        title=(
            f"Hot-spot backpressure timeline "
            f"({params['width']}x{params['height']} mesh, "
            f"{payload['offered']} messages to node {params['hot_node']})"
        ),
    )
    totals = render_table(
        ["counter", "value"],
        [
            ["messages offered / serviced", f"{payload['offered']} / {payload['serviced']}"],
            ["SEND stalls", payload["send_stalls"]],
            ["deliveries refused", payload["deliveries_refused"]],
            ["router moves blocked", payload["blocked_moves"]],
            ["peak in-flight messages", payload["peak_in_flight"]],
            ["hot-node input-queue peak depth", payload["hot_iq"]["peak_depth"]],
            ["sender output-queue peak depth", payload["sender_oq_peak"]],
            ["mean delivery latency (cycles)", payload["mean_latency"]],
        ],
    )
    lines = [timeline, "", totals]
    lineage = payload.get("lineage")
    if lineage:
        breakdown = lineage["breakdown"]
        lines.extend(
            [
                "",
                render_table(
                    ["phase", "total cycles", "share", "p50", "p99"],
                    [
                        [
                            phase,
                            stats["total"],
                            f"{stats['share']:.1%}",
                            stats["p50"],
                            stats["p99"],
                        ]
                        for phase, stats in breakdown["phases"].items()
                    ],
                    title=(
                        f"Per-message latency breakdown "
                        f"({breakdown['messages']} messages, exact "
                        f"reconciliation over {breakdown['traced_cycles']} "
                        f"message-cycles)"
                    ),
                ),
            ]
        )
    profile = payload.get("profile")
    if profile:
        lines.extend(["", render_profile(profile)])
    trace = payload.get("trace")
    if trace:
        lines.append(
            f"\ntrace: {trace['emitted']} events emitted "
            f"({trace['dropped']} dropped from ring)"
        )
    for path in payload.get("trace_files", ()):
        lines.append(f"[trace] {path}")
    lines.append(
        "\nThe cascade runs in the paper's order: the hot node's input "
        "queue fills, deliveries are refused back into the network, the "
        "mesh clogs, sender output queues fill, and SENDs stall."
    )
    return "\n".join(lines)


register(
    ExperimentSpec(
        name="flowcontrol",
        title="Hot-spot flow control (extension, traced)",
        produces=("chain", "cycles", "send_stalls", "deliveries_refused"),
        params=hotspot_params,
        compute=compute_flowcontrol,
        render=render_flowcontrol,
    )
)


def main(argv=None) -> None:  # pragma: no cover - CLI
    params = hotspot_params(EvalOptions())
    print(render_flowcontrol(params, compute_flowcontrol(params)))


if __name__ == "__main__":  # pragma: no cover
    main()
