"""Grain-size sensitivity study (extension of paper Section 4.2.2).

The paper scopes its Figure 12 results to fine-grain programs and argues
the Table 1 savings still apply at coarser grain, just diluted.  This
harness quantifies that: a synthetic workload varies the number of
floating-point operations between consecutive messages and reports, per
interface model, where the communication-overhead share crosses below
50% and how the optimized-versus-basic gap narrows.

Usage::

    python -m repro.eval.grain [--flops 1 3 10 30 100 300]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.exp.artifacts import to_jsonable
from repro.exp.registry import register
from repro.exp.spec import ExperimentSpec
from repro.impls.base import BASIC_OFF_CHIP, OPTIMIZED_REGISTER
from repro.programs.microbench import run_grain_sweep_point
from repro.tam.costmap import breakdown
from repro.utils.tables import render_table

DEFAULT_FLOPS = (1, 3, 10, 30, 100, 300)


@dataclass
class GrainResult:
    flops_per_message: int
    overhead_fraction_basic_offchip: float
    overhead_fraction_optimized_register: float
    speedup_basic_to_optimized: float


def sweep(flops_points: Sequence[int] = DEFAULT_FLOPS) -> List[GrainResult]:
    results = []
    for flops in flops_points:
        point = run_grain_sweep_point(flops)
        basic = breakdown(point.stats, BASIC_OFF_CHIP)
        optimized = breakdown(point.stats, OPTIMIZED_REGISTER)
        results.append(
            GrainResult(
                flops_per_message=flops,
                overhead_fraction_basic_offchip=basic.overhead_fraction,
                overhead_fraction_optimized_register=optimized.overhead_fraction,
                speedup_basic_to_optimized=basic.total / optimized.total,
            )
        )
    return results


def crossover_grain(results: List[GrainResult], threshold: float = 0.5) -> Dict[str, int]:
    """Smallest measured grain at which overhead falls below ``threshold``."""
    out: Dict[str, int] = {}
    for name, getter in (
        ("basic-offchip", lambda r: r.overhead_fraction_basic_offchip),
        ("optimized-register", lambda r: r.overhead_fraction_optimized_register),
    ):
        for result in results:
            if getter(result) < threshold:
                out[name] = result.flops_per_message
                break
    return out


def render_grain(results: List[GrainResult]) -> str:
    table = render_table(
        [
            "flops/message",
            "overhead % (basic off-chip)",
            "overhead % (optimized register)",
            "total speedup opt-reg vs basic-off",
        ],
        [
            [
                r.flops_per_message,
                f"{100 * r.overhead_fraction_basic_offchip:.1f}%",
                f"{100 * r.overhead_fraction_optimized_register:.1f}%",
                f"{r.speedup_basic_to_optimized:.2f}x",
            ]
            for r in results
        ],
        title="Grain-size sensitivity (synthetic compute/communicate loop)",
    )
    crossings = crossover_grain(results)
    notes = []
    for name, flops in crossings.items():
        notes.append(f"{name}: overhead falls below 50% at ~{flops} flops/message")
    note = "\n".join(notes) if notes else "overhead never fell below 50% in range"
    return (
        f"{table}\n{note}\n"
        "As the paper argues (§4.2.2), the absolute savings persist at any "
        "grain; their share of execution time shrinks as messages amortise."
    )


register(
    ExperimentSpec(
        name="grain",
        title="Grain-size sensitivity (extension)",
        produces=("results", "crossover"),
        params=lambda options: {"flops": tuple(DEFAULT_FLOPS)},
        compute=lambda params: {"results": sweep(params["flops"])},
        render=lambda params, payload: render_grain(payload["results"]),
        artifact=lambda params, payload: {
            "results": to_jsonable(payload["results"]),
            "crossover": crossover_grain(payload["results"]),
        },
    )
)


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description="Grain-size sensitivity")
    parser.add_argument("--flops", type=int, nargs="+", default=list(DEFAULT_FLOPS))
    args = parser.parse_args(argv)
    print(render_grain(sweep(args.flops)))


if __name__ == "__main__":  # pragma: no cover
    main()
