"""Regenerate the paper's Table 1 (Section 4.1).

Runs every handler kernel on the behavioural machine under all six
interface models and prints the measured cycle counts next to the paper's
published values.  Usage::

    python -m repro.eval.table1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.exp.registry import register
from repro.exp.spec import ExperimentSpec
from repro.impls.base import ALL_MODELS, InterfaceModel
from repro.isa.machine import Placement
from repro.kernels import expected as X
from repro.kernels.harness import (
    measure_dispatch,
    measure_processing,
    measure_pwrite_deferred_line,
    measure_sending,
)
from repro.kernels.sequences import PROCESSING_CASES, SENDING_MESSAGES
from repro.utils.tables import render_table

Cell = Union[int, Tuple[int, int]]


def format_cell(section: str, case: str, cell: Cell) -> str:
    """Human form of one cell: ``n``, ``lo-hi``, or ``base+slope n``."""
    if isinstance(cell, tuple):
        if case == "pwrite_deferred":
            return f"{cell[0]}+{cell[1]}n"
        if cell[0] == cell[1]:
            return str(cell[0])
        return f"{cell[0]}-{cell[1]}"
    return str(cell)


@dataclass
class Table1Row:
    """One measured row with its paper counterpart."""

    section: str
    case: str
    measured: Dict[str, Cell]
    paper: Dict[str, Cell]

    @property
    def exact_expected(self) -> bool:
        key = (self.section, self.case if self.section != "dispatch" else "-")
        return key in X.EXACT_ROWS

    def matches(self) -> bool:
        return all(
            self.measured[key] == self.paper[key] for key in X.MODEL_ORDER
        )


def _measure_sending_cell(message: str, model: InterfaceModel) -> Cell:
    if model.placement is Placement.REGISTER:
        lo = measure_sending(message, model, "best").cycles
        hi = measure_sending(message, model, "worst").cycles
        return (lo, hi) if lo != hi else lo
    return measure_sending(message, model).cycles


def collect_rows() -> List[Table1Row]:
    """Measure every Table 1 cell under every model."""
    rows: List[Table1Row] = []
    for message in SENDING_MESSAGES:
        rows.append(
            Table1Row(
                "sending",
                message,
                {m.key: _measure_sending_cell(message, m) for m in ALL_MODELS},
                dict(X.SENDING_PAPER[message]),
            )
        )
    rows.append(
        Table1Row(
            "dispatch",
            "-",
            {m.key: measure_dispatch(m).cycles for m in ALL_MODELS},
            dict(X.DISPATCH_PAPER),
        )
    )
    for case in PROCESSING_CASES:
        if case == "pwrite_deferred":
            rows.append(
                Table1Row(
                    "processing",
                    case,
                    {m.key: measure_pwrite_deferred_line(m) for m in ALL_MODELS},
                    dict(X.PWRITE_DEFERRED_PAPER),
                )
            )
        else:
            rows.append(
                Table1Row(
                    "processing",
                    case,
                    {m.key: measure_processing(case, m).cycles for m in ALL_MODELS},
                    dict(X.PROCESSING_PAPER[case]),
                )
            )
    return rows


def render_report(rows: List[Table1Row] | None = None) -> str:
    """The full Table 1 report as text."""
    rows = rows if rows is not None else collect_rows()
    headers = ["action", "message"] + [
        f"{key}" for key in X.MODEL_ORDER
    ] + ["vs paper"]
    body = []
    for row in rows:
        cells = [row.section.upper(), row.case]
        for key in X.MODEL_ORDER:
            measured = format_cell(row.section, row.case, row.measured[key])
            paper = format_cell(row.section, row.case, row.paper[key])
            cells.append(measured if measured == paper else f"{measured} ({paper})")
        if row.matches():
            verdict = "exact"
        elif row.exact_expected:
            verdict = "MISMATCH"
        else:
            verdict = "structural"
        cells.append(verdict)
        body.append(cells)
    legend = (
        "Cells show measured cycles; a parenthesised value is the paper's "
        "where it differs.\n'structural' rows depend on the authors' TAM "
        "runtime internals; see EXPERIMENTS.md."
    )
    table = render_table(
        headers,
        body,
        title="Table 1 - cycles to send, dispatch on, and process each message",
    )
    return f"{table}\n\n{legend}"


def rows_as_records(rows: List[Table1Row] | None = None) -> List[dict]:
    """The report as JSON-serialisable records (machine-readable export)."""
    rows = rows if rows is not None else collect_rows()
    records = []
    for row in rows:
        records.append(
            {
                "action": row.section,
                "message": row.case,
                "measured": {
                    key: format_cell(row.section, row.case, row.measured[key])
                    for key in X.MODEL_ORDER
                },
                "paper": {
                    key: format_cell(row.section, row.case, row.paper[key])
                    for key in X.MODEL_ORDER
                },
                "exact": row.matches(),
            }
        )
    return records


register(
    ExperimentSpec(
        name="table1",
        title="Table 1 (Section 4.1)",
        produces=("records",),
        params=lambda options: {},
        compute=lambda params: {"rows": collect_rows()},
        render=lambda params, payload: render_report(payload["rows"]),
        artifact=lambda params, payload: {
            "records": rows_as_records(payload["rows"])
        },
    )
)


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    import argparse
    import json

    parser = argparse.ArgumentParser(description="Regenerate Table 1")
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable records"
    )
    args = parser.parse_args(argv)
    if args.json:
        print(json.dumps(rows_as_records(), indent=2))
    else:
        print(render_report())


if __name__ == "__main__":  # pragma: no cover
    main()
