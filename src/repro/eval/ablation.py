"""Per-optimization ablations (extension study).

The paper evaluates its optimizations as a bundle; DESIGN.md calls out the
natural follow-up question: *which* of the Section 2.2 mechanisms buys how
much?  This harness prices a program's message mix under cost tables where
each optimization is enabled individually on top of the basic
architecture:

* **+dispatch** — hardware-assisted message interpretation (MsgIp):
  replaces the DISPATCHING row.
* **+types** — the 4-bit immediate type: replaces the SENDING rows (id
  generation and its store disappear from the send path).
* **+reply/forward** — the SEND substitution modes: replaces the
  PROCESSING rows.  (Handler code intertwines the REPLY mode with the type
  immediate on the reply path, so this bundle also carries the small
  id-elimination effect on processing; the split is documented rather than
  fabricated.)

The study runs per placement, so it also answers the paper's
placement-versus-optimization comparison feature by feature.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.exp.registry import register
from repro.exp.runcache import resolve_key, run_program
from repro.exp.spec import ExperimentSpec
from repro.impls.base import ALL_MODELS, Architecture, InterfaceModel
from repro.tam.costmap import (
    CycleBreakdown,
    MessageCostTable,
    breakdown,
    measured_cost_table,
)
from repro.tam.stats import TamStats
from repro.utils.tables import render_table

ABLATIONS = ("basic", "+dispatch", "+types", "+reply/forward", "optimized")


def _tables_for_placement(placement_suffix: str) -> Dict[str, MessageCostTable]:
    basic = measured_cost_table(f"basic-{placement_suffix}")
    optimized = measured_cost_table(f"optimized-{placement_suffix}")
    return {
        "basic": basic,
        "+dispatch": replace(basic, dispatch=optimized.dispatch),
        "+types": replace(basic, sending=dict(optimized.sending)),
        "+reply/forward": replace(
            basic,
            processing=dict(optimized.processing),
            pwrite_deferred_base=optimized.pwrite_deferred_base,
            pwrite_deferred_slope=optimized.pwrite_deferred_slope,
        ),
        "optimized": optimized,
    }


@dataclass
class AblationRow:
    placement: str
    variant: str
    result: CycleBreakdown


def run_ablation(stats: TamStats) -> List[AblationRow]:
    """Price ``stats`` under every ablated cost table, per placement."""
    rows: List[AblationRow] = []
    for placement_suffix in ("register", "onchip", "offchip"):
        basic_model = _find_model(Architecture.BASIC, placement_suffix)
        tables = _tables_for_placement(placement_suffix)
        for variant in ABLATIONS:
            rows.append(
                AblationRow(
                    placement=placement_suffix,
                    variant=variant,
                    result=breakdown(stats, basic_model, table=tables[variant]),
                )
            )
    return rows


def _find_model(architecture: Architecture, placement_suffix: str) -> InterfaceModel:
    for model in ALL_MODELS:
        if model.architecture is architecture and model.key.endswith(
            placement_suffix
        ):
            return model
    raise AssertionError(placement_suffix)


def render_ablation(program: str, rows: List[AblationRow]) -> str:
    by_placement: Dict[str, Dict[str, CycleBreakdown]] = {}
    for row in rows:
        by_placement.setdefault(row.placement, {})[row.variant] = row.result
    body = []
    for placement, variants in by_placement.items():
        basic_overhead = variants["basic"].overhead
        for variant in ABLATIONS:
            result = variants[variant]
            saved = basic_overhead - result.overhead
            body.append(
                [
                    placement,
                    variant,
                    result.overhead,
                    f"{100 * saved / basic_overhead:.1f}%" if basic_overhead else "-",
                    result.total,
                ]
            )
    return render_table(
        ["placement", "variant", "overhead cycles", "overhead saved", "total"],
        body,
        title=f"Optimization ablation - {program}",
    )


def _exp_compute(params: dict) -> dict:
    stats = run_program(
        params["program"], size=params["size"], nodes=params["nodes"]
    )
    return {"rows": run_ablation(stats)}


def _exp_artifact(params: dict, payload: dict) -> dict:
    return {
        "rows": [
            {
                "placement": row.placement,
                "variant": row.variant,
                "compute": row.result.compute,
                "dispatch": row.result.dispatch,
                "communication": row.result.communication,
                "overhead": row.result.overhead,
                "total": row.result.total,
            }
            for row in payload["rows"]
        ],
        "variants": list(ABLATIONS),
    }


register(
    ExperimentSpec(
        name="ablation",
        title="Per-optimization ablation (extension)",
        produces=("rows", "variants"),
        params=lambda options: {"program": "matmul", "size": 24, "nodes": 16},
        programs=lambda params: (
            resolve_key(params["program"], params["size"], params["nodes"]),
        ),
        compute=_exp_compute,
        render=lambda params, payload: render_ablation(
            params["program"], payload["rows"]
        ),
        artifact=_exp_artifact,
    )
)


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description="Per-optimization ablation")
    parser.add_argument("program", nargs="?", default="matmul")
    parser.add_argument("--size", type=int, default=None)
    args = parser.parse_args(argv)
    stats = run_program(args.program, size=args.size)
    print(render_ablation(args.program, run_ablation(stats)))


if __name__ == "__main__":  # pragma: no cover
    main()
