"""The §1 survey comparison: existing interfaces versus this architecture.

Puts the paper-cited per-message overheads of the four interface
categories next to this reproduction's measured costs (a remote-read
round trip under the optimized register model takes two instructions of
handler time), on one cycle axis.

Usage::

    python -m repro.eval.survey [--clock-mhz 25]
"""

from __future__ import annotations

import argparse
from typing import List

from repro.exp.registry import register
from repro.exp.spec import ExperimentSpec
from repro.impls.base import BASIC_OFF_CHIP, OPTIMIZED_REGISTER
from repro.kernels.harness import measure_dispatch, measure_processing, measure_sending
from repro.survey.models import (
    DEFAULT_CLOCK_MHZ,
    SURVEY,
    survey_principles_satisfied,
)
from repro.utils.tables import render_table

SURVEY_COLUMNS = (
    "interface",
    "category",
    "overhead_us",
    "cycles",
    "principles",
    "source",
)


def this_work_rows(clock_mhz: float) -> List[List[object]]:
    """Measured per-message overhead of this paper's architecture."""
    rows = []
    for label, model in (
        ("this work: optimized register", OPTIMIZED_REGISTER),
        ("this work: basic off-chip", BASIC_OFF_CHIP),
    ):
        send = measure_sending("send1", model, "worst").cycles
        receive = (
            measure_dispatch(model).cycles
            + measure_processing("send1", model).cycles
        )
        rows.append(
            [
                label,
                "tightly-coupled NI",
                f"{(send + receive) / clock_mhz:.2f}",
                send + receive,
                4,
                "measured (Send, 1 word)",
            ]
        )
    return rows


def collect_survey(clock_mhz: float = DEFAULT_CLOCK_MHZ) -> List[List[object]]:
    """Every survey row plus this work's measured rows, slowest first."""
    body: List[List[object]] = []
    for interface in sorted(SURVEY, key=lambda i: -i.cycles(clock_mhz)):
        cycles = interface.cycles(clock_mhz)
        body.append(
            [
                interface.name,
                interface.category,
                f"{cycles / clock_mhz:.2f}",
                int(cycles),
                survey_principles_satisfied(interface),
                interface.citation,
            ]
        )
    body.extend(this_work_rows(clock_mhz))
    return body


def render_survey(
    clock_mhz: float = DEFAULT_CLOCK_MHZ,
    rows: List[List[object]] | None = None,
) -> str:
    body = rows if rows is not None else collect_survey(clock_mhz)
    return render_table(
        [
            "interface",
            "category",
            "overhead (us)",
            f"cycles @ {clock_mhz:.0f} MHz",
            "principles (of 4)",
            "source",
        ],
        body,
        title="Section 1 survey: per-message software overhead",
    )


register(
    ExperimentSpec(
        name="survey",
        title="Section 1 survey (extension)",
        produces=("rows", "columns"),
        params=lambda options: {"clock_mhz": DEFAULT_CLOCK_MHZ},
        compute=lambda params: {"rows": collect_survey(params["clock_mhz"])},
        render=lambda params, payload: render_survey(
            params["clock_mhz"], rows=payload["rows"]
        ),
        artifact=lambda params, payload: {
            "rows": [
                dict(zip(SURVEY_COLUMNS, row)) for row in payload["rows"]
            ],
            "columns": list(SURVEY_COLUMNS),
        },
    )
)


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description="Survey comparison")
    parser.add_argument("--clock-mhz", type=float, default=DEFAULT_CLOCK_MHZ)
    args = parser.parse_args(argv)
    print(render_survey(args.clock_mhz))


if __name__ == "__main__":  # pragma: no cover
    main()
