"""End-to-end operation costs: complete round trips under each model.

Table 1 prices the three phases of one message separately; what a
programmer feels is the *whole operation*: request send + request
dispatch + request processing (+ reply dispatch + reply banking for
value-returning operations).  This report composes the measured Table 1
into those end-to-end figures — the per-operation version of the paper's
"five fold" claim — and names the reduction factor per operation.

Usage::

    python -m repro.eval.roundtrip
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.exp.registry import register
from repro.exp.spec import ExperimentSpec
from repro.impls.base import ALL_MODELS
from repro.tam.costmap import MessageCostTable, cost_table
from repro.utils.tables import render_table

OPERATIONS = (
    "send0",
    "send1",
    "send2",
    "write",
    "read",
    "pread_full",
    "pwrite_empty",
)
"""Operations priced end to end (deferred paths depend on n; see Table 1)."""


def roundtrip_cost(table: MessageCostTable, operation: str) -> int:
    """Total cycles, requester plus servicer, for one complete operation."""
    send = table.sending
    proc = table.processing
    dispatch = table.dispatch
    if operation.startswith("send"):
        return send[operation] + dispatch + proc[operation]
    if operation == "write":
        return send["write"] + dispatch + proc["write"]
    if operation == "read":
        # Request + reply: the reply is a Send(1 word) banked at the
        # requester after its own dispatch.
        return send["read"] + dispatch + proc["read"] + dispatch + proc["send1"]
    if operation == "pread_full":
        return (
            send["pread"] + dispatch + proc["pread_full"] + dispatch + proc["send1"]
        )
    if operation == "pwrite_empty":
        return send["pwrite"] + dispatch + proc["pwrite_empty"]
    raise ValueError(f"unknown operation {operation!r}")


@dataclass
class RoundtripRow:
    operation: str
    cycles: Dict[str, int]

    @property
    def reduction(self) -> float:
        return self.cycles["basic-offchip"] / self.cycles["optimized-register"]


def collect(source: str = "measured") -> List[RoundtripRow]:
    tables = {model.key: cost_table(model, source) for model in ALL_MODELS}
    rows = []
    for operation in OPERATIONS:
        rows.append(
            RoundtripRow(
                operation,
                {
                    key: roundtrip_cost(table, operation)
                    for key, table in tables.items()
                },
            )
        )
    return rows


def render_roundtrips(rows: List[RoundtripRow] | None = None, source: str = "measured") -> str:
    rows = rows if rows is not None else collect(source)
    body = []
    for row in rows:
        body.append(
            [row.operation]
            + [row.cycles[model.key] for model in ALL_MODELS]
            + [f"{row.reduction:.1f}x"]
        )
    return render_table(
        ["operation"]
        + [model.key for model in ALL_MODELS]
        + ["basic-off / opt-reg"],
        body,
        title=f"End-to-end operation cost in cycles (Table 1 prices: {source})",
    )


def _exp_artifact(params: dict, payload: dict) -> dict:
    return {
        "operations": [
            {
                "operation": row.operation,
                "cycles": dict(row.cycles),
                "reduction_basic_offchip_vs_optimized_register": row.reduction,
            }
            for row in payload["rows"]
        ]
    }


register(
    ExperimentSpec(
        name="roundtrip",
        title="End-to-end operation costs (derived from Table 1)",
        produces=("operations",),
        params=lambda options: {"source": "measured"},
        compute=lambda params: {"rows": collect(params["source"])},
        render=lambda params, payload: render_roundtrips(
            payload["rows"], source=params["source"]
        ),
        artifact=_exp_artifact,
    )
)


def main(argv=None) -> None:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description="Round-trip operation costs")
    parser.add_argument("--paper-costs", action="store_true")
    args = parser.parse_args(argv)
    print(render_roundtrips(source="paper" if args.paper_costs else "measured"))


if __name__ == "__main__":  # pragma: no cover
    main()
