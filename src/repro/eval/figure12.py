"""Regenerate the paper's Figure 12 (Section 4.2.3).

Runs the two evaluation programs on the TAM substrate, prices the dynamic
instruction and message mix under all six interface models, and prints the
stacked bars (compute / dispatch / other communication) plus the headline
metrics the paper reports:

* the communication-overhead reduction from the basic off-chip model to
  the optimized register model ("about five fold" in the paper);
* the total execution-cycle reduction ("about 40%");
* the overhead share of total cycles ("from 51% to only 17%");
* the orderings: optimizations matter more than placement, and "even the
  slowest optimized implementation is better than the fastest unoptimized
  implementation".

Usage::

    python -m repro.eval.figure12 [matmul|gamteb|both] [--size N]
    python -m repro.eval.figure12 both --paper-costs
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List

from repro.exp.artifacts import to_jsonable
from repro.exp.registry import register
from repro.exp.runcache import (
    DEFAULT_SIZES,
    PAPER_SIZES,
    resolve_key,
    run_program,
)
from repro.exp.spec import ExperimentSpec
from repro.impls.base import ALL_MODELS
from repro.tam.costmap import CycleBreakdown, breakdown_all_models
from repro.tam.stats import TamStats
from repro.utils.profiling import PROFILER
from repro.utils.tables import render_bar_chart, render_table

__all__ = [
    "DEFAULT_SIZES",
    "PAPER_SIZES",
    "run_program",
    "HeadlineMetrics",
    "headline_metrics",
    "render_figure",
]


@dataclass
class HeadlineMetrics:
    """The summary quantities the paper's Section 4.2.3 quotes."""

    overhead_reduction: float  # basic-offchip overhead / optimized-register
    total_reduction_percent: float  # total cycles cut, basic-off -> opt-reg
    overhead_fraction_basic_offchip: float
    overhead_fraction_optimized_register: float
    slowest_optimized_overhead: int
    fastest_basic_overhead: int

    @property
    def optimized_always_beats_basic(self) -> bool:
        return self.slowest_optimized_overhead < self.fastest_basic_overhead


def headline_metrics(breakdowns: List[CycleBreakdown]) -> HeadlineMetrics:
    by_key: Dict[str, CycleBreakdown] = {b.model_key: b for b in breakdowns}
    basic_off = by_key["basic-offchip"]
    opt_reg = by_key["optimized-register"]
    slowest_optimized = max(
        by_key[m.key].overhead for m in ALL_MODELS if m.optimized
    )
    fastest_basic = min(
        by_key[m.key].overhead for m in ALL_MODELS if not m.optimized
    )
    return HeadlineMetrics(
        overhead_reduction=basic_off.overhead / opt_reg.overhead,
        total_reduction_percent=100.0 * (1 - opt_reg.total / basic_off.total),
        overhead_fraction_basic_offchip=basic_off.overhead_fraction,
        overhead_fraction_optimized_register=opt_reg.overhead_fraction,
        slowest_optimized_overhead=slowest_optimized,
        fastest_basic_overhead=fastest_basic,
    )


def render_figure(
    program: str, stats: TamStats, source: str = "measured"
) -> str:
    """The Figure 12 bars and metrics for one program, as text."""
    breakdowns = breakdown_all_models(stats, source=source)
    labels = [b.model_key for b in breakdowns]
    chart = render_bar_chart(
        labels,
        [
            ("compute", [b.compute for b in breakdowns]),
            ("dispatch", [b.dispatch for b in breakdowns]),
            ("other communication", [b.communication for b in breakdowns]),
        ],
        title=f"Figure 12 - {program} (Table 1 prices: {source})",
    )
    table = render_table(
        ["model", "compute", "dispatch", "other comm", "total", "overhead %"],
        [
            [
                b.model_key,
                b.compute,
                b.dispatch,
                b.communication,
                b.total,
                f"{100 * b.overhead_fraction:.1f}%",
            ]
            for b in breakdowns
        ],
    )
    metrics = headline_metrics(breakdowns)
    summary = "\n".join(
        [
            f"communication overhead reduced {metrics.overhead_reduction:.1f}x "
            "(basic off-chip -> optimized register; paper: ~5x)",
            f"total cycles cut {metrics.total_reduction_percent:.0f}% "
            "(paper: ~40%)",
            "overhead share "
            f"{100 * metrics.overhead_fraction_basic_offchip:.0f}% -> "
            f"{100 * metrics.overhead_fraction_optimized_register:.0f}% "
            "(paper: 51% -> 17%)",
            "slowest optimized beats fastest basic: "
            f"{metrics.optimized_always_beats_basic} "
            f"({metrics.slowest_optimized_overhead:,} vs "
            f"{metrics.fastest_basic_overhead:,} overhead cycles)",
            f"grain: {stats.flops_per_message():.1f} flops/message "
            "(paper matmul: ~3); message instructions "
            f"{100 * stats.message_instruction_fraction:.1f}% of dynamic mix "
            "(paper: under 10%)",
        ]
    )
    return f"{chart}\n\n{table}\n\n{summary}"


# ---------------------------------------------------------------------------
# Experiment registration.
# ---------------------------------------------------------------------------


def _exp_params(options) -> dict:
    return {
        "programs": ("matmul", "gamteb"),
        "paper_scale": options.paper_scale,
        "nodes": 16,
        "source": "measured",
    }


def _exp_programs(params: dict):
    return tuple(
        resolve_key(
            program,
            PAPER_SIZES[program] if params["paper_scale"] else None,
            params["nodes"],
        )
        for program in params["programs"]
    )


def _exp_compute(params: dict) -> dict:
    stats = {}
    for program in params["programs"]:
        size = PAPER_SIZES[program] if params["paper_scale"] else None
        stats[program] = run_program(program, size=size, nodes=params["nodes"])
    return {"stats": stats}


def _exp_render(params: dict, payload: dict) -> str:
    figures = [
        render_figure(program, payload["stats"][program], source=params["source"])
        for program in params["programs"]
    ]
    return "\n\n".join(figures) + "\n"


def _exp_artifact(params: dict, payload: dict) -> dict:
    figures = {}
    for program, stats in payload["stats"].items():
        breakdowns = breakdown_all_models(stats, source=params["source"])
        metrics = headline_metrics(breakdowns)
        figures[program] = {
            "breakdowns": [
                {
                    **to_jsonable(b),
                    "total": b.total,
                    "overhead": b.overhead,
                    "overhead_fraction": b.overhead_fraction,
                }
                for b in breakdowns
            ],
            "headline": {
                **to_jsonable(metrics),
                "optimized_always_beats_basic": metrics.optimized_always_beats_basic,
            },
            "stats": stats.as_dict(),
        }
    return {"figures": figures}


register(
    ExperimentSpec(
        name="figure12",
        title="Figure 12 (Section 4.2.3)",
        produces=("figures",),
        params=_exp_params,
        programs=_exp_programs,
        compute=_exp_compute,
        render=_exp_render,
        artifact=_exp_artifact,
    )
)


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description="Regenerate Figure 12")
    parser.add_argument(
        "program",
        nargs="?",
        default="both",
        choices=["matmul", "gamteb", "queens", "both", "all"],
    )
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument(
        "--paper-costs",
        action="store_true",
        help="price messages with the paper's Table 1 instead of measured",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's program sizes (matmul 100, gamteb 16)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time the runs and print the profiler report",
    )
    args = parser.parse_args(argv)
    if args.profile:
        PROFILER.enable()
    if args.program == "both":
        programs = ["matmul", "gamteb"]
    elif args.program == "all":
        programs = ["matmul", "gamteb", "queens"]
    else:
        programs = [args.program]
    source = "paper" if args.paper_costs else "measured"
    for program in programs:
        size = args.size or (PAPER_SIZES[program] if args.paper_scale else None)
        stats = run_program(program, size=size, nodes=args.nodes)
        print(render_figure(program, stats, source=source))
        print()
    if args.profile:
        print(PROFILER.report())


if __name__ == "__main__":  # pragma: no cover
    main()
