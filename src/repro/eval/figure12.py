"""Regenerate the paper's Figure 12 (Section 4.2.3).

Runs the two evaluation programs on the TAM substrate, prices the dynamic
instruction and message mix under all six interface models, and prints the
stacked bars (compute / dispatch / other communication) plus the headline
metrics the paper reports:

* the communication-overhead reduction from the basic off-chip model to
  the optimized register model ("about five fold" in the paper);
* the total execution-cycle reduction ("about 40%");
* the overhead share of total cycles ("from 51% to only 17%");
* the orderings: optimizations matter more than placement, and "even the
  slowest optimized implementation is better than the fastest unoptimized
  implementation".

Usage::

    python -m repro.eval.figure12 [matmul|gamteb|both] [--size N]
    python -m repro.eval.figure12 both --paper-costs
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List

from repro.errors import EvaluationError
from repro.impls.base import ALL_MODELS
from repro.tam.costmap import CycleBreakdown, breakdown_all_models
from repro.tam.stats import TamStats
from repro.utils.profiling import PROFILER
from repro.utils.tables import render_bar_chart, render_table

DEFAULT_SIZES = {"matmul": 40, "gamteb": 64, "queens": 6}
PAPER_SIZES = {"matmul": 100, "gamteb": 16, "queens": 6}


def run_program(name: str, size: int | None = None, nodes: int = 16) -> TamStats:
    """Execute one evaluation program and return its statistics."""
    with PROFILER.span(f"program.{name}"):
        if name == "matmul":
            from repro.programs.matmul import run_matmul

            return run_matmul(n=size or DEFAULT_SIZES["matmul"], nodes=nodes).stats
        if name == "gamteb":
            from repro.programs.gamteb import run_gamteb

            return run_gamteb(
                n_photons=size or DEFAULT_SIZES["gamteb"], nodes=nodes
            ).stats
        if name == "queens":
            from repro.programs.queens import run_queens

            return run_queens(n=size or DEFAULT_SIZES["queens"], nodes=nodes).stats
    raise EvaluationError(
        f"unknown program {name!r}; use 'matmul', 'gamteb', or 'queens'"
    )


@dataclass
class HeadlineMetrics:
    """The summary quantities the paper's Section 4.2.3 quotes."""

    overhead_reduction: float  # basic-offchip overhead / optimized-register
    total_reduction_percent: float  # total cycles cut, basic-off -> opt-reg
    overhead_fraction_basic_offchip: float
    overhead_fraction_optimized_register: float
    slowest_optimized_overhead: int
    fastest_basic_overhead: int

    @property
    def optimized_always_beats_basic(self) -> bool:
        return self.slowest_optimized_overhead < self.fastest_basic_overhead


def headline_metrics(breakdowns: List[CycleBreakdown]) -> HeadlineMetrics:
    by_key: Dict[str, CycleBreakdown] = {b.model_key: b for b in breakdowns}
    basic_off = by_key["basic-offchip"]
    opt_reg = by_key["optimized-register"]
    slowest_optimized = max(
        by_key[m.key].overhead for m in ALL_MODELS if m.optimized
    )
    fastest_basic = min(
        by_key[m.key].overhead for m in ALL_MODELS if not m.optimized
    )
    return HeadlineMetrics(
        overhead_reduction=basic_off.overhead / opt_reg.overhead,
        total_reduction_percent=100.0 * (1 - opt_reg.total / basic_off.total),
        overhead_fraction_basic_offchip=basic_off.overhead_fraction,
        overhead_fraction_optimized_register=opt_reg.overhead_fraction,
        slowest_optimized_overhead=slowest_optimized,
        fastest_basic_overhead=fastest_basic,
    )


def render_figure(
    program: str, stats: TamStats, source: str = "measured"
) -> str:
    """The Figure 12 bars and metrics for one program, as text."""
    breakdowns = breakdown_all_models(stats, source=source)
    labels = [b.model_key for b in breakdowns]
    chart = render_bar_chart(
        labels,
        [
            ("compute", [b.compute for b in breakdowns]),
            ("dispatch", [b.dispatch for b in breakdowns]),
            ("other communication", [b.communication for b in breakdowns]),
        ],
        title=f"Figure 12 - {program} (Table 1 prices: {source})",
    )
    table = render_table(
        ["model", "compute", "dispatch", "other comm", "total", "overhead %"],
        [
            [
                b.model_key,
                b.compute,
                b.dispatch,
                b.communication,
                b.total,
                f"{100 * b.overhead_fraction:.1f}%",
            ]
            for b in breakdowns
        ],
    )
    metrics = headline_metrics(breakdowns)
    summary = "\n".join(
        [
            f"communication overhead reduced {metrics.overhead_reduction:.1f}x "
            "(basic off-chip -> optimized register; paper: ~5x)",
            f"total cycles cut {metrics.total_reduction_percent:.0f}% "
            "(paper: ~40%)",
            "overhead share "
            f"{100 * metrics.overhead_fraction_basic_offchip:.0f}% -> "
            f"{100 * metrics.overhead_fraction_optimized_register:.0f}% "
            "(paper: 51% -> 17%)",
            "slowest optimized beats fastest basic: "
            f"{metrics.optimized_always_beats_basic} "
            f"({metrics.slowest_optimized_overhead:,} vs "
            f"{metrics.fastest_basic_overhead:,} overhead cycles)",
            f"grain: {stats.flops_per_message():.1f} flops/message "
            "(paper matmul: ~3); message instructions "
            f"{100 * stats.message_instruction_fraction:.1f}% of dynamic mix "
            "(paper: under 10%)",
        ]
    )
    return f"{chart}\n\n{table}\n\n{summary}"


def main(argv: List[str] | None = None) -> None:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description="Regenerate Figure 12")
    parser.add_argument(
        "program",
        nargs="?",
        default="both",
        choices=["matmul", "gamteb", "queens", "both", "all"],
    )
    parser.add_argument("--size", type=int, default=None)
    parser.add_argument("--nodes", type=int, default=16)
    parser.add_argument(
        "--paper-costs",
        action="store_true",
        help="price messages with the paper's Table 1 instead of measured",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's program sizes (matmul 100, gamteb 16)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time the runs and print the profiler report",
    )
    args = parser.parse_args(argv)
    if args.profile:
        PROFILER.enable()
    if args.program == "both":
        programs = ["matmul", "gamteb"]
    elif args.program == "all":
        programs = ["matmul", "gamteb", "queens"]
    else:
        programs = [args.program]
    source = "paper" if args.paper_costs else "measured"
    for program in programs:
        size = args.size or (PAPER_SIZES[program] if args.paper_scale else None)
        stats = run_program(program, size=size, nodes=args.nodes)
        print(render_figure(program, stats, source=source))
        print()
    if args.profile:
        print(PROFILER.report())


if __name__ == "__main__":  # pragma: no cover
    main()
