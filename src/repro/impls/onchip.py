"""The on-chip cache-based implementation (paper Section 3.2).

Identical to the off-chip design except the interface sits on the internal
data cache bus: the processor core, instruction set, control, and datapaths
are unchanged — only a new module is added to the die.  Access takes a
single cycle.

The paper sizes the added memory at about 3/4 KiB for two 16-message
queues plus the interface registers; :func:`queue_memory_bytes` reproduces
that arithmetic so the area claim is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.impls.base import BASIC_ON_CHIP, OPTIMIZED_ON_CHIP, InterfaceModel
from repro.nic.messages import MESSAGE_WORDS
from repro.nic.mmio import REGISTER_NAMES
from repro.nic.queues import DEFAULT_CAPACITY


@dataclass(frozen=True)
class OnChipTraits:
    """Design characteristics the paper attributes to this placement."""

    requires_processor_change: bool = True  # new module + I/O pins
    modifies_processor_core: bool = False  # but not the core itself
    on_processor_die: bool = True
    interface_load_dead_cycles: int = 0
    commands_ride_in: str = "memory address bits (Figure 9)"


TRAITS = OnChipTraits()


def queue_memory_bytes(queue_depth: int = DEFAULT_CAPACITY) -> int:
    """On-die memory for both message queues plus the interface registers.

    Section 3.2: "If, for example, each message queue is 16 messages long,
    the total memory needed is about 3/4 of a kilobyte."  Each message is
    five 32-bit words plus its type; we count the five words (the type bits
    round into the same figure).
    """
    message_bytes = MESSAGE_WORDS * 4
    queues = 2 * queue_depth * message_bytes
    registers = len(REGISTER_NAMES) * 4
    return queues + registers


def optimized_model() -> InterfaceModel:
    return OPTIMIZED_ON_CHIP


def basic_model() -> InterfaceModel:
    return BASIC_ON_CHIP
