"""The six network-interface models of the evaluation (paper Section 4).

The paper varies two axes:

* **placement** — off-chip cache-mapped, on-chip cache-mapped, or
  register-file-mapped (Section 3's three implementations);
* **architecture** — *basic* (Section 2.1: explicit 32-bit message ids,
  software dispatch, explicit copies) or *optimized* (Section 2.2: encoded
  types, REPLY / FORWARD modes, MsgIp hardware dispatch, boundary-condition
  versions).

An :class:`InterfaceModel` names one point in that 2×3 grid and knows how
to build a ready-to-run :class:`~repro.isa.machine.Machine` for it.  The
whole evaluation — Table 1, Figure 12, the sweeps — iterates over
:data:`ALL_MODELS`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import EvaluationError
from repro.isa.costs import CostModel, off_chip_with_latency
from repro.isa.machine import DEFAULT_COSTS, Machine, Placement
from repro.nic.interface import NetworkInterface
from repro.node.memory import Memory


class Architecture(enum.Enum):
    """Basic (Section 2.1) versus optimized (Section 2.2) architecture."""

    BASIC = "basic"
    OPTIMIZED = "optimized"


@dataclass(frozen=True)
class InterfaceModel:
    """One of the six evaluated interface models."""

    architecture: Architecture
    placement: Placement
    cost_model: Optional[CostModel] = None

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``optimized-register``."""
        return f"{self.architecture.value}-{self.placement.value.replace('-', '')}"

    @property
    def title(self) -> str:
        """Display name matching the paper's Table 1 column headers."""
        placement_titles = {
            Placement.REGISTER: "Register Mapped",
            Placement.ON_CHIP: "On-chip Cache",
            Placement.OFF_CHIP: "Off-chip Cache",
        }
        return f"{self.architecture.value.capitalize()} {placement_titles[self.placement]}"

    @property
    def optimized(self) -> bool:
        return self.architecture is Architecture.OPTIMIZED

    def costs(self) -> CostModel:
        return self.cost_model or DEFAULT_COSTS[self.placement]

    def make_machine(
        self,
        interface: Optional[NetworkInterface] = None,
        memory: Optional[Memory] = None,
    ) -> Machine:
        """A machine configured for this model's placement and timing."""
        return Machine(
            self.placement,
            interface=interface,
            memory=memory,
            cost_model=self.costs(),
        )

    def with_off_chip_latency(self, dead_cycles: int) -> "InterfaceModel":
        """This model with a different off-chip read latency (Section 4.2.3).

        Only meaningful for the off-chip placement; requesting it elsewhere
        is an error rather than a silent no-op.
        """
        if self.placement is not Placement.OFF_CHIP:
            raise EvaluationError(
                "off-chip latency applies only to the off-chip placement"
            )
        return replace(self, cost_model=off_chip_with_latency(dead_cycles))


OPTIMIZED_REGISTER = InterfaceModel(Architecture.OPTIMIZED, Placement.REGISTER)
OPTIMIZED_ON_CHIP = InterfaceModel(Architecture.OPTIMIZED, Placement.ON_CHIP)
OPTIMIZED_OFF_CHIP = InterfaceModel(Architecture.OPTIMIZED, Placement.OFF_CHIP)
BASIC_REGISTER = InterfaceModel(Architecture.BASIC, Placement.REGISTER)
BASIC_ON_CHIP = InterfaceModel(Architecture.BASIC, Placement.ON_CHIP)
BASIC_OFF_CHIP = InterfaceModel(Architecture.BASIC, Placement.OFF_CHIP)

ALL_MODELS: Tuple[InterfaceModel, ...] = (
    OPTIMIZED_REGISTER,
    OPTIMIZED_ON_CHIP,
    OPTIMIZED_OFF_CHIP,
    BASIC_REGISTER,
    BASIC_ON_CHIP,
    BASIC_OFF_CHIP,
)
"""Table 1's column order: optimized register/on/off, then basic."""


def model_by_key(key: str) -> InterfaceModel:
    """Look a model up by its :attr:`InterfaceModel.key`."""
    for model in ALL_MODELS:
        if model.key == key:
            return model
    raise EvaluationError(
        f"unknown model {key!r}; known: {[m.key for m in ALL_MODELS]}"
    )
