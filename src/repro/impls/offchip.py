"""The off-chip cache-based implementation (paper Section 3.1).

The interface is another chip — the NIC — on the processor's external data
cache bus.  A load or store whose upper address bits match the preset
constant selects the NIC instead of a cache chip; the low address bits
carry the command encoding of Figure 9.

Characteristics modelled here:

* **No processor modification** — the only placement that leaves the
  processor chip untouched.
* **Two dead cycles per interface load** — "in the 88100 processor, a
  loaded value cannot be used in the two cycles following the load"; the
  latency parameter is exposed because Section 4.2.3 studies its growth
  (2 → 8 cycles) as processors outpace off-chip memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.impls.base import BASIC_OFF_CHIP, OPTIMIZED_OFF_CHIP, InterfaceModel
from repro.isa.costs import OFF_CHIP_COSTS


@dataclass(frozen=True)
class OffChipTraits:
    """Design characteristics the paper attributes to this placement."""

    requires_processor_change: bool = False
    on_processor_die: bool = False
    interface_load_dead_cycles: int = OFF_CHIP_COSTS.ni_load_dead_cycles
    commands_ride_in: str = "memory address bits (Figure 9)"


TRAITS = OffChipTraits()


def optimized_model(dead_cycles: int | None = None) -> InterfaceModel:
    """The optimized off-chip model, optionally at a swept read latency."""
    if dead_cycles is None:
        return OPTIMIZED_OFF_CHIP
    return OPTIMIZED_OFF_CHIP.with_off_chip_latency(dead_cycles)


def basic_model(dead_cycles: int | None = None) -> InterfaceModel:
    """The basic off-chip model, optionally at a swept read latency."""
    if dead_cycles is None:
        return BASIC_OFF_CHIP
    return BASIC_OFF_CHIP.with_off_chip_latency(dead_cycles)
