"""The three placements × two architectures: the six evaluated models."""

from repro.impls.base import (
    ALL_MODELS,
    BASIC_OFF_CHIP,
    BASIC_ON_CHIP,
    BASIC_REGISTER,
    OPTIMIZED_OFF_CHIP,
    OPTIMIZED_ON_CHIP,
    OPTIMIZED_REGISTER,
    Architecture,
    InterfaceModel,
    model_by_key,
)

__all__ = [
    "ALL_MODELS",
    "Architecture",
    "BASIC_OFF_CHIP",
    "BASIC_ON_CHIP",
    "BASIC_REGISTER",
    "InterfaceModel",
    "OPTIMIZED_OFF_CHIP",
    "OPTIMIZED_ON_CHIP",
    "OPTIMIZED_REGISTER",
    "model_by_key",
]
