"""The register-file-based implementation (paper Section 3.3).

The fifteen interface registers live in the processor's register file and
are accessed like any scalar register; the ``SEND`` and ``NEXT`` commands
ride in unused bits of every triadic instruction.  The paper's flagship
example —

    ``add o1 i1 i2, SEND type=5, NEXT``

— adds two input-register values into an output register, sends a message,
and advances the input registers, all in one cycle; four memory-mapped
instructions would be needed for the same work.

This is the most efficient and the most intrusive placement: the decoder
must route the rider bits to the interface, input registers need an extra
write port (from the input queue) and output registers an extra read port
(to the output queue).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.impls.base import BASIC_REGISTER, OPTIMIZED_REGISTER, InterfaceModel
from repro.isa.registers import NI_REGISTERS


@dataclass(frozen=True)
class RegisterFileTraits:
    """Design characteristics the paper attributes to this placement."""

    requires_processor_change: bool = True
    modifies_processor_core: bool = True  # decoder + register-file ports
    on_processor_die: bool = True
    interface_load_dead_cycles: int = 0
    commands_ride_in: str = "unused bits of triadic instructions"
    extra_write_ports: int = 5  # input registers, written by the input queue
    extra_read_ports: int = 5  # output registers, read by the output queue


TRAITS = RegisterFileTraits()

RIDER_BITS = 7
"""SEND mode (2) + type (4) + NEXT (1): 'these commands ... take up only
seven bits' (Section 3)."""

MAPPED_REGISTERS = tuple(NI_REGISTERS)
"""The architectural names occupying register-file slots."""


def optimized_model() -> InterfaceModel:
    return OPTIMIZED_REGISTER


def basic_model() -> InterfaceModel:
    return BASIC_REGISTER
