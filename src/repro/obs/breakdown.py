"""Latency-breakdown attribution and critical-path analysis over lineage.

Three consumers of a :class:`~repro.obs.lineage.LineageTracker`:

``reconcile_lineage``
    The exactness gate.  For every completed message the recorded
    phase spans must *partition* its lifetime — contiguous half-open
    intervals from creation, with some span boundary landing exactly
    on the delivery timestamp — otherwise a
    :class:`~repro.errors.ReconciliationError` names the first
    offending lineage id and gap.  This is how we know the hooks cover
    the whole message path rather than sampling it.

``phase_breakdown``
    Per-phase aggregation: total cycles, share of traced time, and a
    p50/p90/p99 distribution of per-message phase durations (via the
    exact :class:`~repro.obs.metrics.Histogram`).

``critical_path``
    Longest chain through the causal DAG.  Records form a DAG via
    parent edges (combining-tree fan-in, TAM request→response); the
    records list is in creation order, which is a topological order,
    so one forward pass computes both the duration-weighted critical
    path and the structural longest chain (``max_chain``).  For a
    64-node NIC barrier on a binary combining tree the structural
    chain is exactly ``2 * tree.depth()`` — up-combines then
    down-broadcast — which the acceptance test pins against the
    closed form.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.errors import ReconciliationError
from repro.obs.lineage import PHASES, LineageRecord, LineageTracker
from repro.obs.metrics import Histogram

__all__ = [
    "LINEAGE_SCHEMA",
    "critical_path",
    "lineage_report",
    "phase_breakdown",
    "reconcile_lineage",
    "write_lineage",
]

LINEAGE_SCHEMA = "repro-lineage/v1"

#: Phases that must partition [created, delivered] for a fabric message.
_TRANSIT_WINDOW = ("inject_wait", "serialize", "queue", "vc_block", "link", "eject")


def _check_record(record: LineageRecord) -> None:
    spans = record.spans
    cursor = record.created
    delivered_hit = record.delivered is None or record.delivered == record.created
    for span in spans:
        if span.start != cursor:
            kind = "overlap" if span.start < cursor else "gap"
            raise ReconciliationError(
                f"lineage {record.lid} ({record.origin}): {kind} of "
                f"{abs(span.start - cursor)} cycles before {span.phase!r} "
                f"span at {span.start} (expected {cursor})"
            )
        if span.end <= span.start:
            raise ReconciliationError(
                f"lineage {record.lid}: empty or negative {span.phase!r} "
                f"span [{span.start}, {span.end})"
            )
        cursor = span.end
        if record.delivered is not None and cursor == record.delivered:
            delivered_hit = True
    if record.delivered is not None and not delivered_hit:
        raise ReconciliationError(
            f"lineage {record.lid}: no span boundary lands on delivery "
            f"timestamp {record.delivered}; spans do not partition "
            f"[{record.created}, {record.delivered}]"
        )
    if record.state == "done" and record.retired is not None and cursor != record.retired:
        raise ReconciliationError(
            f"lineage {record.lid}: spans end at {cursor} but the message "
            f"retired at {record.retired}"
        )


def reconcile_lineage(
    tracker: LineageTracker, require_complete: bool = False
) -> Dict[str, int]:
    """Verify the partition invariant for every record.

    Returns counts of checked/complete/incomplete records.  Incomplete
    records (still in flight when the run ended) are checked for
    contiguity of what *was* recorded; ``require_complete=True``
    additionally rejects any record that never retired.
    """
    complete = 0
    incomplete = 0
    for record in tracker.records:
        _check_record(record)
        if record.state == "done":
            complete += 1
        else:
            incomplete += 1
            if require_complete:
                raise ReconciliationError(
                    f"lineage {record.lid} ({record.origin}) never completed: "
                    f"state {record.state!r} after {len(record.spans)} spans"
                )
    return {
        "checked": complete + incomplete,
        "complete": complete,
        "incomplete": incomplete,
    }


def phase_breakdown(tracker: LineageTracker) -> Dict[str, Any]:
    """Aggregate per-phase totals, shares, and per-message distributions."""
    totals: Dict[str, int] = {}
    histograms: Dict[str, Histogram] = {}
    messages = 0
    for record in tracker.records:
        per_message = record.phase_totals()
        if not per_message:
            continue
        messages += 1
        for phase, cycles in per_message.items():
            totals[phase] = totals.get(phase, 0) + cycles
            histograms.setdefault(phase, Histogram()).add(cycles)
    grand = sum(totals.values())
    phases: Dict[str, Any] = {}
    order = [p for p in PHASES if p in totals]
    order.extend(p for p in totals if p not in PHASES)
    for phase in order:
        summary = histograms[phase].summary()
        phases[phase] = {
            "total": totals[phase],
            "share": round(totals[phase] / grand, 6) if grand else 0.0,
            "p50": summary["p50"],
            "p90": summary["p90"],
            "p99": summary["p99"],
            "mean": summary["mean"],
            "messages": summary["count"],
        }
    return {"messages": messages, "traced_cycles": grand, "phases": phases}


def critical_path(tracker: LineageTracker) -> Dict[str, Any]:
    """Longest causal chain by duration, plus the structural chain.

    One forward pass over the creation-ordered records (a topological
    order of the DAG): ``best[r] = duration(r) + max(best[parent])``.
    """
    records = tracker.records
    best: Dict[int, int] = {}
    chain_len: Dict[int, int] = {}
    back: Dict[int, Optional[LineageRecord]] = {}
    tail: Optional[LineageRecord] = None
    max_chain = 0
    for record in records:
        duration = record.duration()
        best_parent: Optional[LineageRecord] = None
        parent_cost = 0
        parent_len = 0
        for parent in record.parents:
            cost = best.get(parent.lid, 0)
            if best_parent is None or cost > parent_cost:
                best_parent = parent
                parent_cost = cost
            parent_len = max(parent_len, chain_len.get(parent.lid, 0))
        best[record.lid] = duration + parent_cost
        chain_len[record.lid] = 1 + parent_len
        back[record.lid] = best_parent
        max_chain = max(max_chain, chain_len[record.lid])
        if tail is None or best[record.lid] > best[tail.lid]:
            tail = record
    if tail is None:
        return {
            "messages": 0,
            "length": 0,
            "max_chain": 0,
            "duration": 0,
            "phases": {},
            "chain": [],
        }
    chain: List[LineageRecord] = []
    node: Optional[LineageRecord] = tail
    while node is not None:
        chain.append(node)
        node = back.get(node.lid)
    chain.reverse()
    phase_totals: Dict[str, int] = {}
    for record in chain:
        for phase, cycles in record.phase_totals().items():
            phase_totals[phase] = phase_totals.get(phase, 0) + cycles
    return {
        "messages": len(records),
        "length": len(chain),
        "max_chain": max_chain,
        "duration": best[tail.lid],
        "phases": phase_totals,
        "chain": [
            {
                "lid": record.lid,
                "origin": record.origin,
                "mtype": record.mtype,
                "src": record.src,
                "dest": record.dest,
                "duration": record.duration(),
            }
            for record in chain[:64]
        ],
    }


def lineage_report(
    tracker: LineageTracker,
    sample_messages: int = 32,
    strict: bool = True,
) -> Dict[str, Any]:
    """The versioned ``lineage.json`` payload.

    ``strict=True`` runs reconciliation first (raising on violation) so
    an artifact is only ever written for an exactly-accounted run.
    """
    if strict:
        reconciliation = reconcile_lineage(tracker)
    else:
        reconciliation = {
            "checked": len(tracker.records),
            "complete": sum(1 for r in tracker.records if r.state == "done"),
            "incomplete": sum(1 for r in tracker.records if r.state != "done"),
        }
    return {
        "schema": LINEAGE_SCHEMA,
        "origin": tracker.origin,
        "reconciliation": reconciliation,
        "breakdown": phase_breakdown(tracker),
        "critical_path": critical_path(tracker),
        "sample": [
            record.as_dict() for record in tracker.records[:sample_messages]
        ],
    }


def write_lineage(path: str, tracker: LineageTracker, **kwargs: Any) -> Dict[str, Any]:
    """Write :func:`lineage_report` to ``path``, creating parents."""
    payload = lineage_report(tracker, **kwargs)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
