"""Opt-in observability for the whole message path.

Three pieces, all zero-cost when not attached:

* :mod:`repro.obs.tracer` — ring-buffered structured event tracing with
  cycle/turn timestamps and eviction-proof per-kind counts;
* :mod:`repro.obs.metrics` — per-cycle time-series sampling (queue
  depths, link utilization, in-flight counts) with histograms,
  percentiles, and the almost-full threshold-crossing timeline;
* :mod:`repro.obs.chrome` — Chrome ``trace_event`` JSON export, loadable
  in ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.profiler` — kernel-attached per-component cycle/time
  attribution plus the counter/gauge registry the other layers feed;
* :mod:`repro.obs.perfdb` / :mod:`repro.obs.report` — the append-only
  cross-run performance database the benchmarks write and the trend /
  regression report (``python -m repro.obs.report``) built on it.

The fabric, routers, interfaces, and the TAM runtime accept a tracer
(and the fabric a metrics recorder); ``python -m repro --trace`` and
``benchmarks/bench_flowcontrol.py`` wire everything together.
"""

from repro.obs.chrome import chrome_trace, chrome_trace_events, write_chrome_trace
from repro.obs.metrics import (
    Histogram,
    MetricsRecorder,
    ThresholdCrossing,
    TimeSeries,
)
from repro.obs.profiler import (
    ComponentProfile,
    SimProfiler,
    reconcile,
    render_profile,
)
from repro.obs.tracer import (
    ALL_KINDS,
    BLOCK,
    DELIVER,
    DISPATCH,
    DIVERT,
    EJECT,
    HOP,
    INJECT,
    NEXT,
    REFUSE,
    SEND,
    SEND_STALL,
    TAM_HANDLE,
    TAM_POST,
    TraceEvent,
    Tracer,
)

__all__ = [
    "ALL_KINDS",
    "BLOCK",
    "DELIVER",
    "DISPATCH",
    "DIVERT",
    "EJECT",
    "HOP",
    "INJECT",
    "NEXT",
    "REFUSE",
    "SEND",
    "SEND_STALL",
    "TAM_HANDLE",
    "TAM_POST",
    "ComponentProfile",
    "Histogram",
    "MetricsRecorder",
    "SimProfiler",
    "ThresholdCrossing",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "reconcile",
    "render_profile",
    "write_chrome_trace",
]
