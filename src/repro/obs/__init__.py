"""Opt-in observability for the whole message path.

All pieces are zero-cost when not attached:

* :mod:`repro.obs.tracer` — ring-buffered structured event tracing with
  cycle/turn timestamps and eviction-proof per-kind counts;
* :mod:`repro.obs.metrics` — per-cycle time-series sampling (queue
  depths, link utilization, in-flight counts) with histograms,
  percentiles, and the almost-full threshold-crossing timeline;
* :mod:`repro.obs.chrome` — Chrome ``trace_event`` JSON export, loadable
  in ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.profiler` — kernel-attached per-component cycle/time
  attribution plus the counter/gauge registry the other layers feed;
* :mod:`repro.obs.lineage` / :mod:`repro.obs.breakdown` — per-message
  causal span tracing (lineage ids, typed phase spans, parent edges)
  with the exact-reconciliation latency breakdown and critical-path
  extraction on top;
* :mod:`repro.obs.perfdb` / :mod:`repro.obs.report` — the append-only
  cross-run performance database the benchmarks write and the trend /
  regression report (``python -m repro.obs.report``) built on it.

The fabric, routers, interfaces, and the TAM runtime accept a tracer
and a lineage tracker (and the fabric a metrics recorder);
``python -m repro --trace --lineage`` and
``benchmarks/bench_flowcontrol.py`` wire everything together.

The package exports lazily (:pep:`562`): ``from repro.obs import
Tracer`` resolves the submodule on first attribute access, so importing
:mod:`repro.obs` costs nothing for runs that never observe anything.
"""

from typing import Dict, Tuple

#: Exported name -> submodule that defines it.  ``__getattr__`` imports
#: the submodule only when the name is first touched.
_EXPORTS: Dict[str, str] = {
    # tracer
    "ALL_KINDS": "tracer",
    "BLOCK": "tracer",
    "DELIVER": "tracer",
    "DISPATCH": "tracer",
    "DIVERT": "tracer",
    "EJECT": "tracer",
    "HOP": "tracer",
    "INJECT": "tracer",
    "NEXT": "tracer",
    "REFUSE": "tracer",
    "SEND": "tracer",
    "SEND_STALL": "tracer",
    "TAM_HANDLE": "tracer",
    "TAM_POST": "tracer",
    "TraceEvent": "tracer",
    "Tracer": "tracer",
    # metrics
    "Histogram": "metrics",
    "MetricsRecorder": "metrics",
    "ThresholdCrossing": "metrics",
    "TimeSeries": "metrics",
    # profiler
    "ComponentProfile": "profiler",
    "SimProfiler": "profiler",
    "reconcile": "profiler",
    "render_profile": "profiler",
    # chrome
    "chrome_trace": "chrome",
    "chrome_trace_events": "chrome",
    "write_chrome_trace": "chrome",
    # lineage
    "LineageRecord": "lineage",
    "LineageTracker": "lineage",
    "PHASES": "lineage",
    "Span": "lineage",
    # breakdown
    "LINEAGE_SCHEMA": "breakdown",
    "critical_path": "breakdown",
    "lineage_report": "breakdown",
    "phase_breakdown": "breakdown",
    "reconcile_lineage": "breakdown",
    "write_lineage": "breakdown",
}

__all__: Tuple[str, ...] = tuple(sorted(_EXPORTS))


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    from importlib import import_module

    module = import_module(f"{__name__}.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
