"""Span-based causal lineage tracing for the message path.

Every message gets a lineage id at creation (a TAM send, the traffic
pump, a collectives step, or a tenancy workload) and accumulates typed,
non-overlapping phase spans as it moves through the stack:

``inject_wait``
    Sitting in the NI output queue behind earlier messages.
``serialize``
    Head of the output queue, paying the per-flit serialization timer.
``queue`` / ``vc_block``
    Waiting in a router buffer at a hop — split into plain arbitration
    wait (``queue``) and cycles where the fabric explicitly charged a
    blocked move for this message (``vc_block``: no credit on the next
    link, or the destination NI refused delivery).
``link``
    The single cycle a hop's move takes (cycle-start snapshot moves are
    atomic in :class:`~repro.network.fabric.Fabric`).
``eject``
    The delivery cycle into the NI input queue.
``divert``
    A §2.1.3 divert to the system queue (typed ``privileged`` /
    ``pin`` / ``cap``), or a receive-side scheduler parking a tenant's
    queue (typed ``park``); open until the message is redelivered.
``dispatch``
    Waiting in the NI input queue for hardware dispatch.
``handler``
    From dispatch (``MsgIp`` issued) until the handler executes NEXT.

Spans are half-open cycle intervals ``[start, end)`` recorded with a
per-message cursor: each transition closes the open phase at the
transition timestamp and advances the cursor, so a message's spans
partition its lifetime *by construction*; the reconciliation pass in
:mod:`repro.obs.breakdown` then verifies that the hooks actually
covered ``[inject, deliver]`` with no gaps.

The tracker follows the tracer's zero-cost-when-off contract: every
producer keeps a ``lineage`` attribute defaulting to ``None`` and
guards call sites with an identity check, so unobserved runs execute
byte-identical code.  TAM runtimes install wrappers at construction
time (mirroring ``Tracer``), which keeps the fused codegen loop and the
fastpath's compile-at-load closures untouched when lineage is off.

Causality is a DAG over lineage records: a collectives handler's
emission is caused by *all* child messages it consumed since its last
emission (combining-tree semantics), and a TAM ``_post`` issued while a
wrapped handler runs links the request to its response.  Messages
travel by object identity, so the tracker keys live records on
``id(message)`` and keeps a strong reference in the record to prevent
id reuse.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

__all__ = [
    "LineageRecord",
    "LineageTracker",
    "Span",
    "PHASES",
    "PHASE_DISPATCH",
    "PHASE_DIVERT",
    "PHASE_EJECT",
    "PHASE_HANDLER",
    "PHASE_INJECT_WAIT",
    "PHASE_LINK",
    "PHASE_QUEUE",
    "PHASE_SERIALIZE",
    "PHASE_VC_BLOCK",
    "DIVERT_PARK",
]

PHASE_INJECT_WAIT = "inject_wait"
PHASE_SERIALIZE = "serialize"
PHASE_QUEUE = "queue"
PHASE_LINK = "link"
PHASE_VC_BLOCK = "vc_block"
PHASE_EJECT = "eject"
PHASE_DIVERT = "divert"
PHASE_DISPATCH = "dispatch"
PHASE_HANDLER = "handler"

#: Canonical phase order for reports.
PHASES = (
    PHASE_INJECT_WAIT,
    PHASE_SERIALIZE,
    PHASE_QUEUE,
    PHASE_VC_BLOCK,
    PHASE_LINK,
    PHASE_EJECT,
    PHASE_DIVERT,
    PHASE_DISPATCH,
    PHASE_HANDLER,
)

#: Divert reason used when a receive-side scheduler parks a queued or
#: in-registers message (distinct from the NI's privileged/pin/cap).
DIVERT_PARK = "park"


class Span(NamedTuple):
    """One typed phase interval ``[start, end)`` with optional detail."""

    phase: str
    start: int
    end: int
    detail: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "phase": self.phase,
            "start": self.start,
            "end": self.end,
        }
        if self.detail:
            out["detail"] = self.detail
        return out


class LineageRecord:
    """The full span history of one message.

    ``delivered`` marks the end of the ``eject`` span (the cycle after
    the message landed in the NI input queue); the reconciliation
    invariant covers ``[created, delivered]``.  ``dispatch`` and
    ``handler`` spans extend past delivery and are reported but not
    part of the partition window.
    """

    __slots__ = (
        "lid",
        "origin",
        "timeline",
        "src",
        "dest",
        "mtype",
        "created",
        "delivered",
        "retired",
        "spans",
        "state",
        "parents",
        "children",
        "cursor",
        "hop",
        "node",
        "vc",
        "blocked",
        "divert_reason",
        "handler_detail",
        "message",
    )

    def __init__(
        self,
        lid: int,
        origin: str,
        timeline: str,
        created: int,
        src: Optional[int] = None,
        dest: Optional[int] = None,
        mtype: Optional[str] = None,
        message: Any = None,
    ) -> None:
        self.lid = lid
        self.origin = origin
        self.timeline = timeline
        self.src = src
        self.dest = dest
        self.mtype = mtype
        self.created = created
        self.delivered: Optional[int] = None
        self.retired: Optional[int] = None
        self.spans: List[Span] = []
        self.state = "output"
        self.parents: List["LineageRecord"] = []
        self.children: List["LineageRecord"] = []
        self.cursor = created
        self.hop = 0
        self.node: Optional[int] = src
        self.vc: Optional[int] = None
        self.blocked: List[int] = []
        self.divert_reason: Optional[str] = None
        self.handler_detail: Optional[Dict[str, Any]] = None
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LineageRecord(lid={self.lid}, origin={self.origin!r}, "
            f"state={self.state!r}, spans={len(self.spans)})"
        )

    # -- span bookkeeping ------------------------------------------------

    def close(self, phase: str, end: int, detail: Optional[Dict[str, Any]] = None) -> None:
        """Close the open phase at ``end``, advancing the cursor.

        Zero-length intervals are skipped (the phase took no cycles);
        a cursor past ``end`` would be a hook-ordering bug and is
        recorded as-is so reconciliation can flag it rather than
        silently clamping.
        """
        if end != self.cursor:
            self.spans.append(Span(phase, self.cursor, end, detail))
        self.cursor = end

    def close_wait(self, end: int) -> None:
        """Split the wait since the cursor into queue/vc_block spans.

        ``blocked`` holds the cycles where the fabric charged a blocked
        move for this message at the current hop; maximal runs of those
        become ``vc_block`` spans and the remainder ``queue``.
        """
        detail: Dict[str, Any] = {"hop": self.hop, "node": self.node}
        if self.vc is not None:
            detail["vc"] = self.vc
        if not self.blocked:
            self.close(PHASE_QUEUE, end, detail)
            return
        cursor = self.cursor
        for cycle in self.blocked:
            if cycle < cursor or cycle >= end:
                continue  # stale charge outside the wait window
            self.close(PHASE_QUEUE, cycle, detail)
            self.close(PHASE_VC_BLOCK, cycle + 1, detail)
        self.close(PHASE_QUEUE, end, detail)
        self.blocked.clear()

    def duration(self) -> int:
        """Total traced lifetime (creation to last closed span)."""
        end = self.retired if self.retired is not None else self.cursor
        return max(0, end - self.created)

    def phase_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for span in self.spans:
            totals[span.phase] = totals.get(span.phase, 0) + (span.end - span.start)
        return totals

    def as_dict(self) -> Dict[str, Any]:
        return {
            "lid": self.lid,
            "origin": self.origin,
            "timeline": self.timeline,
            "src": self.src,
            "dest": self.dest,
            "mtype": self.mtype,
            "created": self.created,
            "delivered": self.delivered,
            "retired": self.retired,
            "state": self.state,
            "parents": [p.lid for p in self.parents],
            "spans": [span.as_dict() for span in self.spans],
        }


def _mtype_name(message: Any) -> Optional[str]:
    mtype = getattr(message, "mtype", None)
    if mtype is None:
        return None
    return getattr(mtype, "name", None) or str(mtype)


class LineageTracker:
    """Collects :class:`LineageRecord` spans from every layer.

    One tracker observes one run; fabric-side hooks use the fabric's
    cycle clock (installed via the producers' ``attach_lineage``), and
    TAM-side hooks use a private monotonic turn sequence (``timeline``
    distinguishes the two in reports).  All hooks are defensive — an
    unexpected state is absorbed, never raised — so a partially
    observed run (lineage attached mid-flight) degrades to incomplete
    records instead of crashing the simulation.  Strictness lives in
    :func:`repro.obs.breakdown.reconcile_lineage`.
    """

    def __init__(self, origin: str = "run") -> None:
        self.origin = origin
        self.records: List[LineageRecord] = []
        self.live: Dict[int, LineageRecord] = {}
        self.last_record: Optional[LineageRecord] = None
        self._next_lid = 0
        # Collectives: pending-emission messages -> consumed parents,
        # and per-node consumed lists for combining-tree causality.
        self._deferred: Dict[int, Tuple[Any, Tuple[LineageRecord, ...]]] = {}
        self._consumed: Dict[int, List[LineageRecord]] = {}
        self._emitted_nodes: set = set()
        # TAM: handler stack for request->response edges, turn clock.
        self._tam_stack: List[LineageRecord] = []
        self._tam_seq = 0

    # -- record creation -------------------------------------------------

    def _new_record(
        self,
        message: Any,
        ts: int,
        timeline: str,
        origin: Optional[str] = None,
        src: Optional[int] = None,
        dest: Optional[int] = None,
        mtype: Optional[str] = None,
    ) -> LineageRecord:
        record = LineageRecord(
            self._next_lid,
            origin if origin is not None else self.origin,
            timeline,
            ts,
            src=src,
            dest=dest,
            mtype=mtype,
            message=message,
        )
        self._next_lid += 1
        self.records.append(record)
        self.live[id(message)] = record
        self.last_record = record
        return record

    # -- fabric/NI hooks (cycle timeline) --------------------------------

    def on_send(self, message: Any, node: int, ts: int) -> None:
        """A message was accepted into an NI output queue."""
        record = self._new_record(
            message,
            ts,
            "cycles",
            src=node,
            dest=getattr(message, "dest", None),
            mtype=_mtype_name(message),
        )
        record.state = "output"

    def on_serialize_start(self, message: Any, ts: int) -> None:
        """The message reached the head of its output queue."""
        record = self.live.get(id(message))
        if record is None or record.state != "output":
            return
        record.close(PHASE_INJECT_WAIT, ts, {"node": record.src})
        record.state = "serializing"

    def on_inject(self, message: Any, ts: int, node: int) -> None:
        """The serialized message entered the injection buffer."""
        record = self.live.get(id(message))
        if record is None:
            return
        if record.state in ("output", "serializing"):
            if record.state == "output":  # zero-length serialization
                record.close(PHASE_INJECT_WAIT, ts, {"node": record.src})
            record.close(PHASE_SERIALIZE, ts + 1, {"node": node})
            record.state = "transit"
            record.hop = 0
            record.node = node
            record.vc = None
            record.blocked.clear()

    def on_hop(
        self,
        message: Any,
        ts: int,
        hops: int,
        node: int,
        vc: Optional[int],
        src: Optional[int],
    ) -> None:
        """The message moved one link (already counted in ``hops``)."""
        record = self.live.get(id(message))
        if record is None or record.state != "transit":
            return
        record.close_wait(ts)
        record.close(PHASE_LINK, ts + 1, {"hop": record.hop, "src": src, "node": node})
        record.hop = hops
        record.node = node
        record.vc = vc

    def on_block(self, message: Any, ts: int) -> None:
        """The fabric charged a blocked move for this message."""
        record = self.live.get(id(message))
        if record is not None and record.state == "transit":
            record.blocked.append(ts)

    def on_deliver(self, message: Any, ts: int) -> None:
        """The message landed in an NI input queue."""
        record = self.live.get(id(message))
        if record is None:
            return
        if record.state == "transit":
            record.close_wait(ts)
            record.close(PHASE_EJECT, ts + 1, {"node": record.dest})
            record.delivered = ts + 1
            record.state = "queued"
        elif record.state == "diverted":
            ts = max(ts, record.cursor)
            record.close(
                PHASE_DIVERT, ts, {"reason": record.divert_reason, "node": record.dest}
            )
            record.divert_reason = None
            if record.delivered is None:
                record.delivered = ts
            record.state = "queued"

    def on_divert(self, message: Any, ts: int, reason: str) -> None:
        """The NI diverted the message to the system queue."""
        record = self.live.get(id(message))
        if record is None:
            return
        if record.state == "transit":
            record.close_wait(ts)
            record.close(PHASE_EJECT, ts + 1, {"node": record.dest})
            record.delivered = ts + 1
        elif record.state == "queued":
            # Same-cycle transitions after delivery happen "at" the
            # delivered timestamp (the cursor), never before it.
            record.close(PHASE_DISPATCH, max(ts, record.cursor), {"node": record.dest})
        elif record.state == "current":
            record.close(PHASE_HANDLER, max(ts, record.cursor), record.handler_detail)
            record.handler_detail = None
        elif record.state == "diverted":
            record.close(
                PHASE_DIVERT,
                max(ts, record.cursor),
                {"reason": record.divert_reason, "node": record.dest},
            )
        record.divert_reason = reason
        record.state = "diverted"

    def on_drain(self, message: Any, ts: int) -> None:
        """A receive-side scheduler parked the message."""
        record = self.live.get(id(message))
        if record is None:
            return
        if record.state == "queued":
            record.close(PHASE_DISPATCH, max(ts, record.cursor), {"node": record.dest})
        elif record.state == "current":
            record.close(PHASE_HANDLER, max(ts, record.cursor), record.handler_detail)
            record.handler_detail = None
        elif record.state == "diverted":
            return  # already parked/diverted; keep the open span
        else:
            return
        record.divert_reason = DIVERT_PARK
        record.state = "diverted"

    def on_dispatch(
        self, message: Any, ts: int, detail: Optional[Dict[str, Any]] = None
    ) -> None:
        """Hardware dispatch popped the message into the registers."""
        record = self.live.get(id(message))
        if record is None or record.state != "queued":
            return
        record.close(PHASE_DISPATCH, max(ts, record.cursor), {"node": record.dest})
        record.handler_detail = detail
        record.state = "current"

    def on_retire(self, message: Any, ts: int) -> None:
        """The handler executed NEXT; the message is done."""
        record = self.live.pop(id(message), None)
        if record is None:
            return
        ts = max(ts, record.cursor)
        if record.state == "current":
            record.close(PHASE_HANDLER, ts, record.handler_detail)
            record.handler_detail = None
        record.retired = ts
        record.state = "done"

    # -- collectives hooks (combining-tree causality) --------------------

    def begin_collective_handler(self, node: int, message: Any) -> None:
        """A handler program starts consuming ``message`` at ``node``."""
        # A stale emitted-flag (e.g. from the processor-side enter) must
        # not cause a non-emitting combine to lose its consumed set.
        self._emitted_nodes.discard(node)
        record = self.live.get(id(message))
        if record is not None:
            self._consumed.setdefault(node, []).append(record)

    def collective_emit(self, node: int, message: Any) -> None:
        """The handler emitted ``message`` (send deferred to flush).

        The emitted object is *recomposed* by the NI at flush time, so
        the causal parents are noted here keyed on the pending object
        and bound to the real record in :meth:`bind_deferred`.
        """
        parents = tuple(self._consumed.get(node, ()))
        self._deferred[id(message)] = (message, parents)
        self._emitted_nodes.add(node)

    def end_collective_handler(self, node: int) -> None:
        """The handler returned; reset consumed-set if it emitted."""
        if node in self._emitted_nodes:
            self._emitted_nodes.discard(node)
            self._consumed[node] = []

    def bind_deferred(self, pending: Any) -> None:
        """Attach noted parents to the record of the flushed send."""
        entry = self._deferred.pop(id(pending), None)
        record = self.last_record
        if entry is None or record is None:
            return
        for parent in entry[1]:
            if parent is not record and parent not in record.parents:
                record.parents.append(parent)
                parent.children.append(record)

    # -- TAM hooks (turn timeline) ---------------------------------------

    def tam_post(self, message: Any) -> None:
        """A TAM runtime posted an inter-frame message."""
        self._tam_seq += 1
        record = self._new_record(
            message,
            self._tam_seq,
            "turns",
            origin="tam",
            dest=getattr(message, "node", None),
            mtype=getattr(getattr(message, "kind", None), "name", None),
        )
        record.state = "queued"
        if self._tam_stack:
            parent = self._tam_stack[-1]
            record.parents.append(parent)
            parent.children.append(record)

    def tam_begin_handle(self, message: Any) -> Optional[LineageRecord]:
        """A wrapped leaf handler starts handling ``message``."""
        self._tam_seq += 1
        record = self.live.pop(id(message), None)
        if record is None:
            return None
        record.close(PHASE_QUEUE, self._tam_seq, {"node": record.dest})
        record.delivered = self._tam_seq
        record.state = "current"
        self._tam_stack.append(record)
        return record

    def tam_end_handle(self, record: Optional[LineageRecord]) -> None:
        if record is None:
            return
        if self._tam_stack and self._tam_stack[-1] is record:
            self._tam_stack.pop()
        end = max(self._tam_seq, record.cursor) + 1
        self._tam_seq = end
        record.close(PHASE_HANDLER, end, {"node": record.dest})
        record.retired = end
        record.state = "done"

    # -- summary ----------------------------------------------------------

    def complete_records(self) -> List[LineageRecord]:
        return [r for r in self.records if r.state == "done"]

    def clear(self) -> None:
        self.records.clear()
        self.live.clear()
        self.last_record = None
        self._deferred.clear()
        self._consumed.clear()
        self._emitted_nodes.clear()
        self._tam_stack.clear()
        self._tam_seq = 0
        self._next_lid = 0


#: Factory used by attach points that want a clock closure paired with
#: the tracker; kept tiny so producers can remain lineage-agnostic.
ClockFn = Callable[[], int]
