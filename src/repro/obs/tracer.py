"""Structured event tracing for the message path.

The paper's flow-control story (Section 2.1.1) is a *chain*: a slow
receiver's input queue fills, deliveries are refused, link buffers back
up hop by hop, injection stalls, and finally the sender's output queue
fills until ``SEND`` itself stalls.  Each link of that chain is a typed
event here, stamped with the cycle (fabric time) or turn (TAM time) it
happened on:

===========  ================================================================
kind         emitted when
===========  ================================================================
``send``     an interface queued an outgoing message (``SEND`` succeeded)
``stall``    ``SEND`` found the output queue full under the STALL policy
``inject``   a router accepted a message from its local interface
``hop``      a message crossed a link into a neighbor router's buffer
``block``    a head-of-buffer message had no credit to move this cycle
``eject``    a router handed a message to its local interface (accepted)
``deliver``  an interface queued a delivered message into its input queue
``refuse``   a delivery attempt met a full input queue (backpressure)
``divert``   a privileged / PIN-mismatched message was diverted (S2.1.3)
``next``     software retired the current message with ``NEXT``
``dispatch`` a message advanced from the input queue into the registers
``tam_post`` the TAM runtime posted an inter-frame message
``tam_handle`` a TAM node processed one inter-frame message
===========  ================================================================

The tracer is opt-in and *zero-cost when off*: every instrumented hot
path keeps a ``tracer`` reference that defaults to ``None`` and guards
emission with an identity check (the TAM runtime goes further and only
installs traced entry points when a tracer is supplied, so its disabled
hot path is byte-identical to the uninstrumented one).

Events land in a bounded ring buffer so tracing a long run cannot
exhaust memory; per-kind counts are kept separately and never evicted,
which is what lets the reconciliation tests compare event counts against
:class:`~repro.network.fabric.FabricStats` /
:class:`~repro.nic.queues.QueueStats` /
:class:`~repro.nic.interface.InterfaceStats` exactly even after the ring
has wrapped.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, NamedTuple, Optional

# Event kinds.  Plain strings (not an enum): emission sits on simulator
# hot paths and exports want the string anyway.
SEND = "send"
SEND_STALL = "stall"
INJECT = "inject"
HOP = "hop"
BLOCK = "block"
EJECT = "eject"
DELIVER = "deliver"
REFUSE = "refuse"
DIVERT = "divert"
NEXT = "next"
DISPATCH = "dispatch"
TAM_POST = "tam_post"
TAM_HANDLE = "tam_handle"

ALL_KINDS = (
    SEND,
    SEND_STALL,
    INJECT,
    HOP,
    BLOCK,
    EJECT,
    DELIVER,
    REFUSE,
    DIVERT,
    NEXT,
    DISPATCH,
    TAM_POST,
    TAM_HANDLE,
)

DEFAULT_RING_CAPACITY = 1 << 16


class TraceEvent(NamedTuple):
    """One traced occurrence on the message path."""

    ts: int
    """Cycle (fabric events) or monotonic turn sequence (TAM events)."""
    kind: str
    """One of the module-level kind constants."""
    node: int
    """The node at which the event was observed."""
    detail: dict
    """Kind-specific fields (destination, hop count, message kind, ...)."""


class Tracer:
    """A ring-buffered recorder of :class:`TraceEvent`.

    ``capacity`` bounds the ring; ``None`` keeps every event (tests and
    short runs).  :attr:`counts` is exact regardless of eviction.
    """

    __slots__ = ("events", "counts", "emitted", "capacity")

    def __init__(self, capacity: Optional[int] = DEFAULT_RING_CAPACITY) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("tracer ring capacity must be positive")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.counts: Dict[str, int] = {}
        self.emitted = 0

    def emit(self, ts: int, kind: str, node: int, **detail) -> None:
        """Record one event; evicts the oldest when the ring is full."""
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.emitted += 1
        self.events.append(TraceEvent(ts, kind, node, detail))

    def count(self, kind: str) -> int:
        """Exact number of ``kind`` events emitted (eviction-proof)."""
        return self.counts.get(kind, 0)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (still present in the counts)."""
        return self.emitted - len(self.events)

    def clear(self) -> None:
        """Discard all events and counts."""
        self.events.clear()
        self.counts.clear()
        self.emitted = 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tracer {len(self.events)} buffered / {self.emitted} emitted "
            f"({self.dropped} dropped)>"
        )
