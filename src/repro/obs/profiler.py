"""In-run profiling: where do the simulated cycles (and the host's
wall-clock) go?

The tracer answers *what happened* on the message path and the metrics
recorder *how loaded* the machine was; :class:`SimProfiler` answers the
remaining evaluation question — sPIN-style per-handler time attribution:
which component consumed the cycles.  It attaches to a
:class:`~repro.sim.kernel.SimKernel` (``kernel.attach_profiler``) and
records, per registered component:

* **serviced ticks** — cycles in which the component actually ran
  (it was awake and the kernel called ``tick``);
* **wall seconds** — host time spent inside those ticks;
* **utilization** — serviced ticks over total kernel cycles, which for
  wake/sleep components is exactly the fraction of simulated time they
  were awake (the kernel only ticks awake components);
* **timed wakes** — how often a ``wake_at`` promotion returned the
  component to the scan.

Like the tracer, profiling is *zero-cost when off*: the kernel keeps a
``_profiler`` reference defaulting to ``None`` and selects the profiled
run loop only when one is attached, so an unprofiled run executes the
original loop byte for byte and no component ever grows a profiling
attribute (``tests/obs/test_profiler.py`` pins both properties).

Beyond kernel components the profiler is a small counter/gauge registry
that the rest of the observability layer feeds into:

* ``track(name)`` opens an attribution row for work not driven by a
  kernel — the TAM runtime uses it for per-node turn attribution;
* ``set_counter`` / ``add_counter`` hold exact integer totals —
  :func:`repro.tam.fastpath.feed_profiler` folds the fast path's batched
  :class:`~repro.tam.stats.TamStats` in here;
* ``set_gauge`` holds point-in-time measurements —
  :meth:`repro.obs.metrics.MetricsRecorder.feed_profiler` publishes its
  per-series summaries this way.

With ``sample_interval > 0`` the profiled kernel loop additionally
snapshots cumulative serviced ticks every N cycles; the Chrome exporter
(:mod:`repro.obs.chrome`) renders those snapshots as a counter track
alongside the event and metrics tracks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReconciliationError
from repro.utils.tables import render_table


class ComponentProfile:
    """One attribution row: serviced ticks and wall seconds."""

    __slots__ = ("name", "ticks", "seconds", "timed_wakes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.ticks = 0
        self.seconds = 0.0
        self.timed_wakes = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComponentProfile {self.name}: {self.ticks} ticks {self.seconds:.4f}s>"


class SimProfiler:
    """Per-component cycle/time attribution plus a counter/gauge registry.

    One profiler serves one kernel's component attribution (indices are
    bound to the kernel's registration order on the first profiled run)
    plus any number of :meth:`track` rows and registry entries.
    ``sample_interval`` > 0 snapshots cumulative serviced ticks every N
    cycles for the Chrome counter track; 0 disables sampling.
    """

    def __init__(self, sample_interval: int = 0) -> None:
        if sample_interval < 0:
            raise ValueError("sample_interval must be >= 0")
        self.sample_interval = sample_interval
        self.cycles = 0
        self.runs = 0
        #: Kernel-bound rows, index-aligned with the kernel's handles.
        self.kernel_components: List[ComponentProfile] = []
        #: Non-kernel rows opened with :meth:`track`, in creation order.
        self.tracked: Dict[str, ComponentProfile] = {}
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        #: Sampled (cycle, cumulative-ticks-per-kernel-component) pairs.
        self.samples: List[Tuple[int, Tuple[int, ...]]] = []

    # ------------------------------------------------------------------
    # Kernel binding (called by SimKernel's profiled run path).
    # ------------------------------------------------------------------

    def bind_components(self, names: List[str]) -> List[ComponentProfile]:
        """Align the kernel rows with ``names`` (idempotent, extend-only).

        Components registered since the last run gain fresh rows;
        existing rows keep accumulating across runs.
        """
        for index, name in enumerate(names):
            if index < len(self.kernel_components):
                continue
            self.kernel_components.append(ComponentProfile(name))
        return self.kernel_components

    def sample_now(self, cycle: int) -> None:
        """Record one cumulative-ticks snapshot (the Chrome counter row)."""
        self.samples.append(
            (cycle, tuple(c.ticks for c in self.kernel_components))
        )

    # ------------------------------------------------------------------
    # Non-kernel attribution and the registry.
    # ------------------------------------------------------------------

    def track(self, name: str) -> ComponentProfile:
        """An attribution row for work not driven by a kernel."""
        profile = self.tracked.get(name)
        if profile is None:
            profile = self.tracked[name] = ComponentProfile(name)
        return profile

    def add_counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def set_counter(self, name: str, value: int) -> None:
        """Absolute counter store (used by cumulative-stats feeders)."""
        self.counters[name] = value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------

    def components(self) -> List[ComponentProfile]:
        """Every attribution row: kernel-bound first, then tracked."""
        return list(self.kernel_components) + list(self.tracked.values())

    def utilization(self, profile: ComponentProfile) -> Optional[float]:
        """Serviced-tick fraction of kernel cycles (None off-kernel)."""
        if profile in self.tracked.values() or self.cycles == 0:
            return None
        return profile.ticks / self.cycles

    def to_dict(self, include_samples: bool = False) -> Dict[str, Any]:
        """The whole profile as plain JSON types.

        ``seconds`` is the one volatile field; everything else is
        deterministic for a deterministic workload, which is what the
        determinism pin in ``tests/obs/test_profiler.py`` compares.
        """
        components: Dict[str, Any] = {}
        for profile in self.kernel_components:
            entry: Dict[str, Any] = {
                "ticks": profile.ticks,
                "seconds": round(profile.seconds, 6),
                "timed_wakes": profile.timed_wakes,
            }
            if self.cycles:
                entry["utilization"] = round(profile.ticks / self.cycles, 6)
            components[profile.name] = entry
        for profile in self.tracked.values():
            components[profile.name] = {
                "ticks": profile.ticks,
                "seconds": round(profile.seconds, 6),
            }
        out: Dict[str, Any] = {
            "cycles": self.cycles,
            "runs": self.runs,
            "components": components,
            "counters": dict(self.counters),
            "gauges": {k: round(v, 6) for k, v in self.gauges.items()},
        }
        if include_samples:
            out["samples"] = {
                "interval": self.sample_interval,
                "names": [c.name for c in self.kernel_components],
                "cycles": [cycle for cycle, _ in self.samples],
                "ticks": [list(ticks) for _, ticks in self.samples],
            }
        return out

    def table(self) -> str:
        """The terminal attribution table."""
        return render_profile(self.to_dict())


def render_profile(profile: Mapping[str, Any]) -> str:
    """Render a :meth:`SimProfiler.to_dict` payload as terminal tables.

    A module function (not a method) so report renderers can format a
    profile that crossed a process or JSON boundary as plain data.
    """
    cycles = profile.get("cycles", 0)
    components: Mapping[str, Any] = profile.get("components", {})
    total_ticks = sum(entry.get("ticks", 0) for entry in components.values())
    total_seconds = sum(entry.get("seconds", 0.0) for entry in components.values())
    rows = []
    for name, entry in components.items():
        ticks = entry.get("ticks", 0)
        seconds = entry.get("seconds", 0.0)
        utilization = entry.get("utilization")
        rows.append(
            [
                name,
                ticks,
                f"{ticks / total_ticks * 100:.1f}%" if total_ticks else "-",
                f"{seconds:.4f}",
                f"{seconds / total_seconds * 100:.1f}%" if total_seconds else "-",
                f"{utilization * 100:.1f}%" if utilization is not None else "-",
            ]
        )
    title = f"cycle/time attribution ({cycles} kernel cycles)"
    tables = [
        render_table(
            ["component", "ticks", "tick share", "wall s", "wall share", "awake"],
            rows,
            title=title,
        )
    ]
    counters = profile.get("counters") or {}
    gauges = profile.get("gauges") or {}
    if counters or gauges:
        registry_rows = [[name, value] for name, value in sorted(counters.items())]
        registry_rows += [
            [name, f"{value:g}"] for name, value in sorted(gauges.items())
        ]
        tables.append(render_table(["registry entry", "value"], registry_rows))
    return "\n\n".join(tables)


def reconcile(checks: Mapping[str, Tuple[float, float]]) -> None:
    """Cross-validate independent accountings; raise on any mismatch.

    ``checks`` maps an invariant name to an ``(expected, observed)``
    pair.  This is the opt-in verification hook the reconciliation tests
    use to pin the profiler's tick attribution against the tracer's
    eviction-proof event counts — it never runs on a hot path.
    """
    mismatches = [
        f"{name}: expected {expected}, observed {observed}"
        for name, (expected, observed) in checks.items()
        if expected != observed
    ]
    if mismatches:
        raise ReconciliationError(
            "profile/trace reconciliation failed:\n  " + "\n  ".join(mismatches)
        )
