"""Cross-run trend report and regression gate over the perf database.

Usage::

    python -m repro.obs.report                      # markdown to stdout
    python -m repro.obs.report --check              # exit 1 on regression
    python -m repro.obs.report --html report.html   # self-contained HTML

Reads the append-only history written by the benchmarks
(:mod:`repro.obs.perfdb`), computes robust per-metric trends, and flags
regressions.  The statistics are deliberately boring and robust:

* comparisons happen only within one host fingerprint — wall-clock
  numbers from different machines never meet;
* the **baseline** is the *median* of every prior same-host run, so one
  historic outlier cannot shift it;
* the **noise band** is the scaled median absolute deviation
  (``1.4826 × MAD``, the consistent estimator of the standard deviation
  under normal noise), so the gate learns each bench's natural jitter
  from its own history;
* a metric **regresses** when the latest value exceeds
  ``baseline + band + threshold × baseline`` (threshold defaults to
  10%) — it must clear both the observed noise and the relative margin;
* the gate arms only once two prior same-host runs exist (a single
  history point gives a zero-width noise band, which would flag ordinary
  jitter); until then timings report ``needs-history``;
* only wall-clock metrics are gated — those whose name matches the gate
  pattern (an ``fnmatch`` glob, default ``*_seconds``); counts and cycle
  totals are reported as trend context but a deterministic change to
  them is a correctness question, not a perf regression.  Pass
  ``--gate-pattern`` to widen or narrow the gated set.
"""

from __future__ import annotations

import argparse
import html as _html
import sys
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.perfdb import DEFAULT_DB_DIR, host_fingerprint, load_all
from repro.obs.profiler import render_profile

#: Default relative-margin threshold for the regression gate.
DEFAULT_THRESHOLD = 0.10

#: Default fnmatch glob selecting which metrics the gate judges.
DEFAULT_GATE_PATTERN = "*_seconds"

#: Scale factor turning a MAD into a consistent sigma estimate.
MAD_SIGMA = 1.4826

#: How many trailing values the trend column shows.
TREND_WINDOW = 8


def median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        raise ValueError("median of empty sequence")
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def noise_band(values: Sequence[float], center: float) -> float:
    """``1.4826 × MAD`` around ``center`` (0.0 for < 2 samples)."""
    if len(values) < 2:
        return 0.0
    return MAD_SIGMA * median([abs(v - center) for v in values])


def analyze_metric(
    name: str,
    history: Sequence[float],
    current: float,
    threshold: float,
    gate_pattern: str = DEFAULT_GATE_PATTERN,
) -> Dict[str, Any]:
    """Judge one metric's latest value against its same-host history."""
    gated = fnmatchcase(name, gate_pattern)
    entry: Dict[str, Any] = {
        "name": name,
        "current": current,
        "gated": gated,
        "history": list(history[-TREND_WINDOW:]),
        "regressed": False,
    }
    if not history:
        entry["status"] = "no-history"
        return entry
    baseline = median(history)
    band = noise_band(history, baseline)
    limit = baseline + band + threshold * baseline
    entry["baseline"] = baseline
    entry["band"] = band
    entry["limit"] = limit
    entry["delta"] = (current - baseline) / baseline if baseline else 0.0
    if gated and len(history) < 2:
        entry["status"] = "needs-history"
    elif gated and baseline > 0 and current > limit:
        entry["regressed"] = True
        entry["status"] = "REGRESSED"
    elif gated:
        entry["status"] = "ok"
    else:
        entry["status"] = "info"
    return entry


def analyze_bench(
    bench: str,
    records: Sequence[Dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    host: Optional[str] = None,
    gate_pattern: str = DEFAULT_GATE_PATTERN,
) -> Dict[str, Any]:
    """Trend + verdict for one bench's history (same-host records only)."""
    host = host or host_fingerprint()
    same = [r for r in records if r.get("host") == host]
    report: Dict[str, Any] = {
        "bench": bench,
        "host": host,
        "runs": len(same),
        "runs_all_hosts": len(records),
        "metrics": [],
        "regressed": False,
    }
    if not same:
        report["status"] = "no-runs-on-this-host"
        return report
    current = same[-1]
    report["sha"] = current.get("sha", "unknown")
    profile = current.get("meta", {}).get("profile")
    if isinstance(profile, dict) and profile.get("components"):
        report["profile"] = profile
    history = same[:-1]
    if not history:
        report["status"] = "first-run-on-this-host"
    for name, value in sorted(current["metrics"].items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        prior = [
            r["metrics"][name]
            for r in history
            if isinstance(r["metrics"].get(name), (int, float))
        ]
        entry = analyze_metric(name, prior, float(value), threshold, gate_pattern)
        report["metrics"].append(entry)
        if entry["regressed"]:
            report["regressed"] = True
    if "status" not in report:
        report["status"] = "REGRESSED" if report["regressed"] else "ok"
    return report


def analyze_db(
    db_dir: Path,
    threshold: float = DEFAULT_THRESHOLD,
    host: Optional[str] = None,
    benches: Optional[Sequence[str]] = None,
    gate_pattern: str = DEFAULT_GATE_PATTERN,
) -> List[Dict[str, Any]]:
    """One report per bench in the database, bench-name order."""
    history = load_all(db_dir)
    reports = []
    for bench in sorted(history):
        if benches and bench not in benches:
            continue
        reports.append(
            analyze_bench(bench, history[bench], threshold, host, gate_pattern)
        )
    return reports


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}" if abs(value) < 1000 else f"{value:,.1f}"
    return f"{int(value):,}"


def _trend(values: Sequence[float]) -> str:
    return " ".join(_fmt(v) for v in values) if values else "-"


def render_markdown(reports: Sequence[Dict[str, Any]], threshold: float) -> str:
    """The terminal/markdown face of the report."""
    lines = [
        "# Performance observatory",
        "",
        f"host `{reports[0]['host']}`, gate threshold "
        f"{threshold:.0%} over the noise band"
        if reports
        else "_empty perf database — run a benchmark with `--perfdb` first_",
    ]
    for report in reports:
        lines += [
            "",
            f"## {report['bench']} — {report['status']}",
            "",
            f"{report['runs']} run(s) on this host "
            f"({report['runs_all_hosts']} total), "
            f"latest sha `{report.get('sha', 'unknown')}`",
        ]
        if not report["metrics"]:
            continue
        lines += [
            "",
            "| metric | current | baseline | noise | limit | Δ | status | trend |",
            "| --- | --- | --- | --- | --- | --- | --- | --- |",
        ]
        for entry in report["metrics"]:
            delta = entry.get("delta")
            lines.append(
                "| {name} | {current} | {baseline} | {band} | {limit} "
                "| {delta} | {status} | {trend} |".format(
                    name=f"`{entry['name']}`",
                    current=_fmt(entry["current"]),
                    baseline=_fmt(entry.get("baseline")),
                    band=_fmt(entry.get("band")),
                    limit=_fmt(entry.get("limit")) if entry["gated"] else "-",
                    delta=f"{delta:+.1%}" if delta is not None else "-",
                    status="**REGRESSED**"
                    if entry["regressed"]
                    else entry["status"],
                    trend=_trend(entry["history"]),
                )
            )
        if report.get("profile"):
            lines += ["", "```", render_profile(report["profile"]), "```"]
    regressions = [r["bench"] for r in reports if r["regressed"]]
    lines += [
        "",
        f"**{len(regressions)} regression(s): {', '.join(regressions)}**"
        if regressions
        else "No regressions flagged.",
    ]
    return "\n".join(lines) + "\n"


_HTML_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 72em; color: #1a1a2e; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #cfd4dc; padding: 0.3em 0.7em; text-align: right; }
th, td:first-child { text-align: left; }
th { background: #eef1f5; }
.ok { color: #1a7f37; } .bad { color: #b31d28; font-weight: bold; }
.info { color: #57606a; }
code { background: #f3f4f6; padding: 0 0.25em; }
"""


def render_html(reports: Sequence[Dict[str, Any]], threshold: float) -> str:
    """A self-contained HTML document (the CI artifact)."""

    def esc(text: Any) -> str:
        return _html.escape(str(text))

    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        "<title>Performance observatory</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        "<h1>Performance observatory</h1>",
    ]
    if reports:
        parts.append(
            f"<p>host <code>{esc(reports[0]['host'])}</code>, gate threshold "
            f"{threshold:.0%} over the noise band</p>"
        )
    else:
        parts.append("<p><em>empty perf database</em></p>")
    for report in reports:
        cls = "bad" if report["regressed"] else "ok"
        parts.append(
            f"<h2>{esc(report['bench'])} — "
            f"<span class='{cls}'>{esc(report['status'])}</span></h2>"
            f"<p>{report['runs']} run(s) on this host "
            f"({report['runs_all_hosts']} total), latest sha "
            f"<code>{esc(report.get('sha', 'unknown'))}</code></p>"
        )
        if not report["metrics"]:
            continue
        parts.append(
            "<table><tr><th>metric</th><th>current</th><th>baseline</th>"
            "<th>noise</th><th>limit</th><th>Δ</th><th>status</th>"
            "<th>trend</th></tr>"
        )
        for entry in report["metrics"]:
            delta = entry.get("delta")
            status_cls = (
                "bad"
                if entry["regressed"]
                else ("ok" if entry["status"] == "ok" else "info")
            )
            parts.append(
                "<tr><td><code>{name}</code></td><td>{current}</td>"
                "<td>{baseline}</td><td>{band}</td><td>{limit}</td>"
                "<td>{delta}</td><td class='{cls}'>{status}</td>"
                "<td>{trend}</td></tr>".format(
                    name=esc(entry["name"]),
                    current=_fmt(entry["current"]),
                    baseline=_fmt(entry.get("baseline")),
                    band=_fmt(entry.get("band")),
                    limit=_fmt(entry.get("limit")) if entry["gated"] else "-",
                    delta=f"{delta:+.1%}" if delta is not None else "-",
                    cls=status_cls,
                    status=esc(entry["status"]),
                    trend=esc(_trend(entry["history"])),
                )
            )
        parts.append("</table>")
        if report.get("profile"):
            parts.append(
                f"<pre>{esc(render_profile(report['profile']))}</pre>"
            )
    regressions = [r["bench"] for r in reports if r["regressed"]]
    parts.append(
        f"<p class='bad'>{len(regressions)} regression(s): "
        f"{esc(', '.join(regressions))}</p>"
        if regressions
        else "<p class='ok'>No regressions flagged.</p>"
    )
    parts.append("</body></html>")
    return "".join(parts) + "\n"


# ----------------------------------------------------------------------
# CLI.
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Cross-run perf trends and the regression gate.",
    )
    parser.add_argument(
        "--db",
        default=str(DEFAULT_DB_DIR),
        help=f"perf database directory (default: {DEFAULT_DB_DIR})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression margin over the noise band (default 0.10)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any gated metric regressed (the CI gate)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        help="restrict to this bench (repeatable; default: all)",
    )
    parser.add_argument(
        "--host",
        help="compare within this host fingerprint (default: this machine)",
    )
    parser.add_argument(
        "--gate-pattern",
        default=DEFAULT_GATE_PATTERN,
        help=(
            "fnmatch glob selecting which metrics the gate judges "
            f"(default: {DEFAULT_GATE_PATTERN}); everything else is "
            "reported as trend context only"
        ),
    )
    parser.add_argument("--html", help="also write a self-contained HTML report")
    parser.add_argument("--markdown", help="also write the markdown report")
    args = parser.parse_args(argv)

    reports = analyze_db(
        Path(args.db),
        args.threshold,
        host=args.host,
        benches=args.bench,
        gate_pattern=args.gate_pattern,
    )
    markdown = render_markdown(reports, args.threshold)
    print(markdown, end="")
    if args.markdown:
        path = Path(args.markdown)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(markdown)
    if args.html:
        path = Path(args.html)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_html(reports, args.threshold))
        print(f"[report] {path}", file=sys.stderr)
    if args.check and any(r["regressed"] for r in reports):
        print("[report] regression gate FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
