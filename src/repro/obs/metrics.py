"""Time-series metrics for the message path.

Where the tracer (:mod:`repro.obs.tracer`) records *what happened*, this
module records *how loaded the machine was while it happened*: per-cycle
sampled queue depths, link utilization, in-flight message counts, and
the timeline of almost-full threshold crossings (the paper's ``iafull``
/ ``oafull`` conditions, Section 2.2.4).  Samples aggregate into
histograms and percentiles so a whole run summarises to a handful of
numbers, while the raw series stay available for the Chrome-trace
counter tracks and the JSON artifact.

Like the tracer, metrics are opt-in: the fabric holds a ``metrics``
reference defaulting to ``None`` and samples only when one is attached.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, NamedTuple, Optional

from repro.utils.rng import SplitMix64


class Histogram:
    """An exact value-count histogram over integer-ish samples.

    Queue depths and in-flight counts are small non-negative integers, so
    counting exact values is both cheaper and more faithful than binning.
    Float samples (e.g. link utilization) are quantised to three decimal
    places.

    **Bounded-memory mode.**  The multi-tenant study keeps thousands of
    per-tenant latency series alive at once; an exact value-count map per
    tenant would retain every distinct sample.  Constructing with
    ``reservoir=k`` caps memory at ``k`` retained values using Vitter's
    Algorithm R over a seeded :class:`~repro.utils.rng.SplitMix64` (so
    runs stay deterministic): count, min, max, and mean remain *exact*;
    percentiles come from the uniform reservoir and are exact whenever
    the sample count has not exceeded ``k``.
    """

    __slots__ = ("counts", "total", "reservoir_size",
                 "_reservoir", "_rng", "_min", "_max", "_sum")

    def __init__(
        self, reservoir: Optional[int] = None, seed: int = 0
    ) -> None:
        if reservoir is not None and reservoir <= 0:
            raise ValueError(
                f"reservoir size must be positive, got {reservoir}"
            )
        self.counts: Dict[float, int] = {}
        self.total = 0
        self.reservoir_size = reservoir
        self._reservoir: Optional[List[float]] = (
            [] if reservoir is not None else None
        )
        self._rng = SplitMix64(seed) if reservoir is not None else None
        self._min = math.inf
        self._max = -math.inf
        self._sum = 0.0

    def add(self, value: float) -> None:
        key = round(float(value), 3)
        self.total += 1
        if self._reservoir is None:
            self.counts[key] = self.counts.get(key, 0) + 1
            return
        # Bounded mode: exact moments, Algorithm R for the value sample.
        if key < self._min:
            self._min = key
        if key > self._max:
            self._max = key
        self._sum += key
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(key)
        else:
            slot = self._rng.next_below(self.total)
            if slot < self.reservoir_size:
                self._reservoir[slot] = key

    def percentile(self, p: float) -> float:
        """The smallest sample value covering fraction ``p`` of the mass.

        In bounded-memory mode the mass is the reservoir's: exact until
        the sample count first exceeds the reservoir size, an unbiased
        estimate after.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile {p} outside [0, 1]")
        if self.total == 0:
            return 0.0
        if self._reservoir is not None:
            held = sorted(self._reservoir)
            index = max(0, math.ceil(p * len(held)) - 1)
            return held[index]
        target = p * self.total
        seen = 0
        value = 0.0
        for value, count in sorted(self.counts.items()):
            seen += count
            if seen >= target:
                return value
        return value

    @property
    def mean(self) -> float:
        if self.total == 0:
            return 0.0
        if self._reservoir is not None:
            return self._sum / self.total
        return sum(v * c for v, c in self.counts.items()) / self.total

    def summary(self) -> Dict[str, float]:
        if self.total == 0:
            return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.total,
            "min": self._min if self._reservoir is not None else min(self.counts),
            "max": self._max if self._reservoir is not None else max(self.counts),
            "mean": round(self.mean, 4),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class TimeSeries:
    """One named per-cycle series plus its running histogram."""

    __slots__ = ("name", "cycles", "values", "histogram")

    def __init__(self, name: str) -> None:
        self.name = name
        self.cycles: List[int] = []
        self.values: List[float] = []
        self.histogram = Histogram()

    def sample(self, cycle: int, value: float) -> None:
        self.cycles.append(cycle)
        self.values.append(value)
        self.histogram.add(value)

    def __len__(self) -> int:
        return len(self.values)

    def summary(self) -> Dict[str, float]:
        return self.histogram.summary()


class ThresholdCrossing(NamedTuple):
    """One edge of an almost-full condition (``iafull`` / ``oafull``)."""

    cycle: int
    node: int
    queue: str
    """``"iq"`` or ``"oq"``."""
    asserted: bool
    """True for a rising edge (condition asserted), False for falling."""


class MetricsRecorder:
    """Collects named time series and the threshold-crossing timeline."""

    __slots__ = ("series", "crossings")

    def __init__(self) -> None:
        self.series: Dict[str, TimeSeries] = {}
        self.crossings: List[ThresholdCrossing] = []

    def sample(self, name: str, cycle: int, value: float) -> None:
        """Append one sample to series ``name`` (created on first use)."""
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name)
        series.sample(cycle, value)

    def crossing(self, cycle: int, node: int, queue: str, asserted: bool) -> None:
        """Record one almost-full edge."""
        self.crossings.append(ThresholdCrossing(cycle, node, queue, asserted))

    def first_crossing(
        self, queue: str, node: Optional[int] = None, asserted: bool = True
    ) -> Optional[int]:
        """Cycle of the first matching edge, or None."""
        for event in self.crossings:
            if event.queue != queue or event.asserted != asserted:
                continue
            if node is not None and event.node != node:
                continue
            return event.cycle
        return None

    def summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-series aggregate statistics."""
        return {name: series.summary() for name, series in self.series.items()}

    def feed_profiler(self, profiler, prefix: str = "metrics.") -> None:
        """Publish this recording into a profiler's gauge registry.

        Each series contributes its mean / p99 / max as gauges and its
        sample count as a counter, and the threshold-crossing timeline
        contributes one counter — the point-in-time face of the same
        recording, so one :meth:`~repro.obs.profiler.SimProfiler.to_dict`
        payload (and the report built on it) carries both attributions.
        """
        for name, series in self.series.items():
            summary = series.summary()
            profiler.set_counter(f"{prefix}{name}.samples", int(summary["count"]))
            profiler.set_gauge(f"{prefix}{name}.mean", summary["mean"])
            profiler.set_gauge(f"{prefix}{name}.p99", summary["p99"])
            profiler.set_gauge(f"{prefix}{name}.max", summary["max"])
        profiler.set_counter(f"{prefix}crossings", len(self.crossings))

    def to_dict(self, include_samples: bool = True) -> Dict[str, Any]:
        """The whole recording as plain JSON types (artifact body)."""
        out: Dict[str, Any] = {
            "series": {},
            "crossings": [
                {
                    "cycle": c.cycle,
                    "node": c.node,
                    "queue": c.queue,
                    "asserted": c.asserted,
                }
                for c in self.crossings
            ],
        }
        for name, series in self.series.items():
            entry: Dict[str, Any] = {"summary": series.summary()}
            if include_samples:
                entry["cycles"] = list(series.cycles)
                entry["values"] = list(series.values)
            out["series"][name] = entry
        return out
