"""Chrome ``trace_event`` export for traced runs.

Converts a :class:`~repro.obs.tracer.Tracer` (and optionally a
:class:`~repro.obs.metrics.MetricsRecorder`) into the JSON Object Format
of the Trace Event specification, loadable in ``chrome://tracing`` or
https://ui.perfetto.dev:

* every trace event becomes an *instant* event (``ph: "i"``) on a track
  per node (``pid`` 0, ``tid`` = node), with the kind as the name and
  the detail fields as ``args``;
* every metrics series becomes a *counter* track (``ph: "C"``), so queue
  depths and in-flight counts render as area charts over the events;
* threshold crossings become instant events on a dedicated counter pid;
* a profiler's sampled tick attribution becomes one stacked counter
  track (``ph: "C"`` on its own pid), so per-component serviced work
  renders as an area chart aligned with the event timeline;
* a lineage tracker's phase spans become *complete* events (``ph: "X"``)
  on a track per message, with flow events (``ph: "s"`` / ``"f"``)
  linking the send to the delivery and each causal parent to its child,
  so a collective tree or request/response pair renders as connected
  arrows across components;
* when the tracer's ring buffer evicted events, a ``trace_overflow``
  counter track marks the drop count on the time axis and a top-of-trace
  metadata warning names it, so a truncated trace is never silently
  mistaken for a complete one.

Simulated cycles (or TAM turns) map one-to-one onto trace microseconds —
the viewer's time axis reads directly as cycles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRecorder
from repro.obs.profiler import SimProfiler
from repro.obs.tracer import Tracer

#: pid used for per-node event tracks.
EVENTS_PID = 0
#: pid used for counter (metrics) tracks.
COUNTERS_PID = 1
#: pid used for the profiler's tick-attribution counter track.
PROFILER_PID = 2
#: pid used for lineage span tracks (one tid per message).
LINEAGE_PID = 3


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _lineage_events(lineage) -> List[Dict[str, Any]]:
    """Spans as complete events plus flow arrows along causal edges."""
    events: List[Dict[str, Any]] = []
    for record in lineage.records:
        tid = record.lid
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": LINEAGE_PID,
                "tid": tid,
                "args": {
                    "name": f"lineage {record.lid} "
                    f"({record.origin}, {record.src}->{record.dest})"
                },
            }
        )
        for span in record.spans:
            event: Dict[str, Any] = {
                "name": span.phase,
                "cat": "lineage",
                "ph": "X",
                "ts": span.start,
                "dur": span.end - span.start,
                "pid": LINEAGE_PID,
                "tid": tid,
            }
            if span.detail:
                event["args"] = {k: _jsonable(v) for k, v in span.detail.items()}
            events.append(event)
        # One flow per message from its creation to its delivery, so the
        # viewer draws the arrow across the component tracks.
        if record.delivered is not None:
            events.append(
                {
                    "name": "lineage",
                    "cat": "lineage-flow",
                    "ph": "s",
                    "id": record.lid,
                    "ts": record.created,
                    "pid": LINEAGE_PID,
                    "tid": tid,
                }
            )
            events.append(
                {
                    "name": "lineage",
                    "cat": "lineage-flow",
                    "ph": "f",
                    "bp": "e",
                    "id": record.lid,
                    "ts": record.delivered,
                    "pid": LINEAGE_PID,
                    "tid": tid,
                }
            )
        # Causal edges: parent's end flows into this record's start.
        for parent in record.parents:
            flow_id = (parent.lid << 20) | (record.lid & 0xFFFFF)
            parent_end = (
                parent.retired if parent.retired is not None else parent.cursor
            )
            events.append(
                {
                    "name": "causes",
                    "cat": "lineage-causal",
                    "ph": "s",
                    "id": flow_id,
                    "ts": parent_end,
                    "pid": LINEAGE_PID,
                    "tid": parent.lid,
                }
            )
            events.append(
                {
                    "name": "causes",
                    "cat": "lineage-causal",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": record.created,
                    "pid": LINEAGE_PID,
                    "tid": tid,
                }
            )
    return events


def chrome_trace_events(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRecorder] = None,
    profiler: Optional[SimProfiler] = None,
    lineage=None,
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for the attached observers."""
    events: List[Dict[str, Any]] = []
    if tracer is not None:
        nodes = set()
        last_ts = 0
        for event in tracer:
            nodes.add(event.node)
            last_ts = event.ts
            events.append(
                {
                    "name": event.kind,
                    "cat": "message-path",
                    "ph": "i",
                    "s": "t",
                    "ts": event.ts,
                    "pid": EVENTS_PID,
                    "tid": event.node,
                    "args": {k: _jsonable(v) for k, v in event.detail.items()},
                }
            )
        for node in sorted(nodes):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": EVENTS_PID,
                    "tid": node,
                    "args": {"name": f"node {node}"},
                }
            )
        if tracer.dropped:
            # The retained window starts after the evictions, so the
            # overflow counter steps from the drop count down to zero at
            # the first retained event — the truncation is visible on
            # the time axis itself, not only in the metadata.
            first_ts = next(iter(tracer)).ts if len(tracer) else last_ts
            events.append(
                {
                    "name": "trace_overflow",
                    "cat": "metrics",
                    "ph": "C",
                    "ts": 0,
                    "pid": COUNTERS_PID,
                    "args": {"events_dropped": tracer.dropped},
                }
            )
            events.append(
                {
                    "name": "trace_overflow",
                    "cat": "metrics",
                    "ph": "C",
                    "ts": first_ts,
                    "pid": COUNTERS_PID,
                    "args": {"events_dropped": 0},
                }
            )
    if metrics is not None:
        for name, series in metrics.series.items():
            for cycle, value in zip(series.cycles, series.values):
                events.append(
                    {
                        "name": name,
                        "cat": "metrics",
                        "ph": "C",
                        "ts": cycle,
                        "pid": COUNTERS_PID,
                        "args": {name: value},
                    }
                )
        for crossing in metrics.crossings:
            events.append(
                {
                    "name": f"{crossing.queue} almost-full "
                    f"{'asserted' if crossing.asserted else 'deasserted'}",
                    "cat": "threshold",
                    "ph": "i",
                    "s": "p",
                    "ts": crossing.cycle,
                    "pid": EVENTS_PID,
                    "tid": crossing.node,
                    "args": {"queue": crossing.queue, "node": crossing.node},
                }
            )
    if profiler is not None and profiler.samples:
        # The samples are cumulative serviced ticks; the counter track
        # plots the per-window deltas so the chart reads as "work done
        # per sample interval", stacked by component.
        names = [c.name for c in profiler.kernel_components]
        previous = (0,) * len(names)
        for cycle, cumulative in profiler.samples:
            args = {
                name: cumulative[index] - previous[index]
                for index, name in enumerate(names)
                if index < len(cumulative)
            }
            previous = cumulative
            events.append(
                {
                    "name": "serviced ticks",
                    "cat": "profile",
                    "ph": "C",
                    "ts": cycle,
                    "pid": PROFILER_PID,
                    "args": args,
                }
            )
    if lineage is not None:
        events.extend(_lineage_events(lineage))
    return events


def chrome_trace(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRecorder] = None,
    profiler: Optional[SimProfiler] = None,
    lineage=None,
) -> Dict[str, Any]:
    """The full JSON-object-format document (``chrome://tracing`` input)."""
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer, metrics, profiler, lineage),
        "displayTimeUnit": "ms",
        "otherData": {"timebase": "1 trace microsecond = 1 simulated cycle"},
    }
    if tracer is not None and tracer.dropped:
        document["otherData"]["events_dropped_from_ring"] = tracer.dropped
        document["otherData"]["warning"] = (
            f"INCOMPLETE TRACE: the tracer's ring buffer evicted "
            f"{tracer.dropped} events before export; the trace_overflow "
            f"counter track marks the truncation"
        )
    return document


def write_chrome_trace(
    path: Path,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRecorder] = None,
    profiler: Optional[SimProfiler] = None,
    lineage=None,
) -> Path:
    """Write the trace document to ``path``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(tracer, metrics, profiler, lineage)) + "\n"
    )
    return path
