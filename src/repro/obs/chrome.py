"""Chrome ``trace_event`` export for traced runs.

Converts a :class:`~repro.obs.tracer.Tracer` (and optionally a
:class:`~repro.obs.metrics.MetricsRecorder`) into the JSON Object Format
of the Trace Event specification, loadable in ``chrome://tracing`` or
https://ui.perfetto.dev:

* every trace event becomes an *instant* event (``ph: "i"``) on a track
  per node (``pid`` 0, ``tid`` = node), with the kind as the name and
  the detail fields as ``args``;
* every metrics series becomes a *counter* track (``ph: "C"``), so queue
  depths and in-flight counts render as area charts over the events;
* threshold crossings become instant events on a dedicated counter pid;
* a profiler's sampled tick attribution becomes one stacked counter
  track (``ph: "C"`` on its own pid), so per-component serviced work
  renders as an area chart aligned with the event timeline.

Simulated cycles (or TAM turns) map one-to-one onto trace microseconds —
the viewer's time axis reads directly as cycles.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRecorder
from repro.obs.profiler import SimProfiler
from repro.obs.tracer import Tracer

#: pid used for per-node event tracks.
EVENTS_PID = 0
#: pid used for counter (metrics) tracks.
COUNTERS_PID = 1
#: pid used for the profiler's tick-attribution counter track.
PROFILER_PID = 2


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace_events(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRecorder] = None,
    profiler: Optional[SimProfiler] = None,
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for ``tracer``/``metrics``/``profiler``."""
    events: List[Dict[str, Any]] = []
    if tracer is not None:
        nodes = set()
        for event in tracer:
            nodes.add(event.node)
            events.append(
                {
                    "name": event.kind,
                    "cat": "message-path",
                    "ph": "i",
                    "s": "t",
                    "ts": event.ts,
                    "pid": EVENTS_PID,
                    "tid": event.node,
                    "args": {k: _jsonable(v) for k, v in event.detail.items()},
                }
            )
        for node in sorted(nodes):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": EVENTS_PID,
                    "tid": node,
                    "args": {"name": f"node {node}"},
                }
            )
    if metrics is not None:
        for name, series in metrics.series.items():
            for cycle, value in zip(series.cycles, series.values):
                events.append(
                    {
                        "name": name,
                        "cat": "metrics",
                        "ph": "C",
                        "ts": cycle,
                        "pid": COUNTERS_PID,
                        "args": {name: value},
                    }
                )
        for crossing in metrics.crossings:
            events.append(
                {
                    "name": f"{crossing.queue} almost-full "
                    f"{'asserted' if crossing.asserted else 'deasserted'}",
                    "cat": "threshold",
                    "ph": "i",
                    "s": "p",
                    "ts": crossing.cycle,
                    "pid": EVENTS_PID,
                    "tid": crossing.node,
                    "args": {"queue": crossing.queue, "node": crossing.node},
                }
            )
    if profiler is not None and profiler.samples:
        # The samples are cumulative serviced ticks; the counter track
        # plots the per-window deltas so the chart reads as "work done
        # per sample interval", stacked by component.
        names = [c.name for c in profiler.kernel_components]
        previous = (0,) * len(names)
        for cycle, cumulative in profiler.samples:
            args = {
                name: cumulative[index] - previous[index]
                for index, name in enumerate(names)
                if index < len(cumulative)
            }
            previous = cumulative
            events.append(
                {
                    "name": "serviced ticks",
                    "cat": "profile",
                    "ph": "C",
                    "ts": cycle,
                    "pid": PROFILER_PID,
                    "args": args,
                }
            )
    return events


def chrome_trace(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRecorder] = None,
    profiler: Optional[SimProfiler] = None,
) -> Dict[str, Any]:
    """The full JSON-object-format document (``chrome://tracing`` input)."""
    document: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer, metrics, profiler),
        "displayTimeUnit": "ms",
        "otherData": {"timebase": "1 trace microsecond = 1 simulated cycle"},
    }
    if tracer is not None and tracer.dropped:
        document["otherData"]["events_dropped_from_ring"] = tracer.dropped
    return document


def write_chrome_trace(
    path: Path,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRecorder] = None,
    profiler: Optional[SimProfiler] = None,
) -> Path:
    """Write the trace document to ``path``; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(tracer, metrics, profiler)) + "\n")
    return path
