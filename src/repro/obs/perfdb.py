"""The append-only cross-run performance database.

One benchmark run = one JSON record appended to
``results/perfdb/<bench>.jsonl``.  Appending never rewrites history —
this is the fix for the old ``BENCH_*.json`` files, which each run
silently overwrote, so a regression could only ever be compared against
the single run that happened to come before it.

Each record carries the identity needed to compare runs honestly later:

* ``bench`` — the benchmark name (one JSONL file per bench);
* ``sha`` — the git commit the run measured (``unknown`` outside a
  checkout), so trends line up with history;
* ``host`` — a stable fingerprint of the machine and interpreter, so the
  report (:mod:`repro.obs.report`) never compares wall-clock numbers
  across different hardware;
* ``metrics`` — the flat name→number map; wall-clock metrics end in
  ``_seconds`` and are the only ones the regression gate judges;
* ``meta`` — free-form context (per-component cycle attribution,
  parameters, iteration counts) kept out of the gate's way.

The module is dependency-free (stdlib only) and does no statistics —
loading, fingerprinting, and appending live here; the trend math lives
in :mod:`repro.obs.report`.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: Bump when the record layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default database directory, relative to the repo root.
DEFAULT_DB_DIR = Path("results") / "perfdb"


def host_fingerprint() -> str:
    """A short stable id for this machine + interpreter combination.

    Wall-clock comparisons only make sense within one fingerprint; the
    report partitions history by it.
    """
    basis = "|".join(
        (
            platform.system(),
            platform.machine(),
            platform.processor(),
            platform.python_implementation(),
            platform.python_version(),
        )
    )
    return hashlib.sha256(basis.encode()).hexdigest()[:12]


def git_sha(root: Optional[Path] = None) -> str:
    """The current commit's short SHA, or ``"unknown"`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(root) if root else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def make_record(
    bench: str,
    metrics: Mapping[str, float],
    meta: Optional[Mapping[str, Any]] = None,
    sha: Optional[str] = None,
    host: Optional[str] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble one perfdb record (plain JSON types throughout)."""
    if not bench:
        raise ValueError("bench name must be non-empty")
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": bench,
        "sha": sha if sha is not None else git_sha(),
        "host": host if host is not None else host_fingerprint(),
        "timestamp": round(
            timestamp if timestamp is not None else time.time(), 3
        ),
        "metrics": {name: value for name, value in metrics.items()},
        "meta": dict(meta) if meta else {},
    }


def bench_path(db_dir: Path, bench: str) -> Path:
    """Where ``bench``'s history lives under ``db_dir``."""
    safe = bench.replace("/", "_")
    return Path(db_dir) / f"{safe}.jsonl"


def append_record(db_dir: Path, record: Mapping[str, Any]) -> Path:
    """Append one record to its bench's JSONL file; returns the path."""
    path = bench_path(db_dir, record["bench"])
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_bench(db_dir: Path, bench: str) -> List[Dict[str, Any]]:
    """All records for ``bench``, oldest first (file order).

    Unparseable or wrong-schema lines are skipped, not fatal — an
    append-only log accumulated across commits may contain formats this
    checkout no longer reads.
    """
    path = bench_path(db_dir, bench)
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if (
            isinstance(record, dict)
            and record.get("schema_version") == SCHEMA_VERSION
            and isinstance(record.get("metrics"), dict)
        ):
            records.append(record)
    return records


def load_all(db_dir: Path) -> Dict[str, List[Dict[str, Any]]]:
    """Every bench's history under ``db_dir``, keyed by bench name."""
    db_dir = Path(db_dir)
    if not db_dir.is_dir():
        return {}
    history: Dict[str, List[Dict[str, Any]]] = {}
    for path in sorted(db_dir.glob("*.jsonl")):
        records = load_bench(db_dir, path.stem)
        if records:
            history[records[0]["bench"]] = records
    return history
