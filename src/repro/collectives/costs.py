"""Post-hoc cycle pricing for collective runs.

The simulation layer counts *events* (steps handled, messages sent,
values combined); this module prices those events in processor cycles
under each of the six Table 1 interface models, using the measured
kernel costs from :mod:`repro.kernels.harness` — the same
measure-then-multiply method the netsweep eval uses, applied to the
collectives.

One collective step is priced as a dispatch plus a one-data-word Send
handler (``send1`` — a collective step message carries its value in one
data word), and each message transmission as the ``send1`` SENDING
kernel.  Both variants additionally charge the processor, per node, one
entry (the local state update that enters the collective) and one
completion observation (a dispatch-shaped poll):

* processor-driven: the processor also executes every step and every
  send, so ``proc_cycles = entry/exit + step work``;
* NIC-offloaded: the step work runs at the interface, so it lands in
  ``nic_cycles`` and ``proc_cycles`` is the entry/exit term alone —
  strictly smaller whenever the collective moved any message.

``overlap`` is the fraction of the total work the processor did *not*
perform — the compute availability the offload buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

from repro.collectives.engine import CollectiveRun
from repro.impls.base import InterfaceModel
from repro.kernels.harness import (
    measure_dispatch,
    measure_processing,
    measure_sending,
)

#: The kernel that prices one collective step: a Send carrying one data
#: word, the shape of every UP/DOWN message.
STEP_KERNEL = "send1"


@dataclass(frozen=True)
class StepCosts:
    """Measured per-event cycle costs under one interface model."""

    dispatch: int
    processing: int
    sending: int

    @property
    def handle(self) -> int:
        """One handled step: dispatch into the handler plus its body."""
        return self.dispatch + self.processing


@lru_cache(maxsize=None)
def _costs_for(model: InterfaceModel) -> StepCosts:
    return StepCosts(
        dispatch=measure_dispatch(model).cycles,
        processing=measure_processing(STEP_KERNEL, model).cycles,
        sending=measure_sending(STEP_KERNEL, model).cycles,
    )


@dataclass
class PricedRun:
    """One collective run priced under one interface model."""

    model: str
    variant: str
    proc_cycles: int
    nic_cycles: int
    total_cycles: int
    proc_cycles_per_node: float
    overlap: float


def price_run(run: CollectiveRun, model: InterfaceModel) -> PricedRun:
    """Price a :class:`CollectiveRun`'s events under ``model``."""
    costs = _costs_for(model)
    n = run.n_nodes
    # Per node: one entry (local state update, processing-shaped) and
    # one completion observation (dispatch-shaped poll) — the only
    # processor work the NIC-offloaded variant has.
    entry_exit = n * (costs.processing + costs.dispatch)
    step_work = (
        run.events["handled"] * costs.handle
        + run.events["sends"] * costs.sending
    )
    if run.variant == "nic":
        proc_cycles = entry_exit
        nic_cycles = step_work
    else:
        proc_cycles = entry_exit + step_work
        nic_cycles = 0
    total = entry_exit + step_work
    return PricedRun(
        model=model.key,
        variant=run.variant,
        proc_cycles=proc_cycles,
        nic_cycles=nic_cycles,
        total_cycles=total,
        proc_cycles_per_node=round(proc_cycles / n, 3),
        overlap=round(1.0 - proc_cycles / total, 4) if total else 0.0,
    )


def price_table(run: CollectiveRun, models) -> Dict[str, PricedRun]:
    """Price one run under every model in ``models``, keyed by model key."""
    return {model.key: price_run(run, model) for model in models}
