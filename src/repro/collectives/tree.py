"""Combining trees: the communication structure of the collectives.

Every collective here — barrier, broadcast, reduce, allreduce — moves
data along one k-ary tree over the machine's nodes.  The tree is defined
over *ranks* rather than node ids so any node can be the root: rank 0 is
the root and node ``n`` has rank ``(n - root) % n_nodes``, the standard
rotation trick.  Within rank space the tree is the implicit-heap k-ary
layout (parent of rank ``r`` is ``(r - 1) // arity``, children are
``arity * r + 1 ..``), which keeps parent/children computable in O(1)
with no per-node tables — exactly what a NIC handler with a few words of
state wants.

``arity = n_nodes - 1`` degenerates to the flat (star) tree: every leaf
sends straight to the root.  The eval uses it as the no-combining
baseline the combining tree is measured against.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import CollectiveError


class CombiningTree:
    """A k-ary tree over the ranks of ``n_nodes`` nodes, rooted anywhere."""

    def __init__(self, n_nodes: int, root: int = 0, arity: int = 2) -> None:
        if n_nodes < 1:
            raise CollectiveError(f"a tree needs at least one node, got {n_nodes}")
        if not 0 <= root < n_nodes:
            raise CollectiveError(f"root {root} is not a node of {n_nodes}")
        if arity < 1:
            raise CollectiveError(f"tree arity must be positive, got {arity}")
        self.n_nodes = n_nodes
        self.root = root
        self.arity = arity

    def rank(self, node: int) -> int:
        """The tree rank of ``node`` (0 is the root)."""
        self._check(node)
        return (node - self.root) % self.n_nodes

    def node_of(self, rank: int) -> int:
        """The node holding tree rank ``rank``."""
        if not 0 <= rank < self.n_nodes:
            raise CollectiveError(f"rank {rank} out of range")
        return (rank + self.root) % self.n_nodes

    def parent(self, node: int) -> int | None:
        """The node's tree parent, or None at the root."""
        rank = self.rank(node)
        if rank == 0:
            return None
        return self.node_of((rank - 1) // self.arity)

    def children(self, node: int) -> Tuple[int, ...]:
        """The node's tree children, ascending rank order."""
        rank = self.rank(node)
        first = self.arity * rank + 1
        return tuple(
            self.node_of(child)
            for child in range(first, min(first + self.arity, self.n_nodes))
        )

    def fan_in(self, node: int) -> int:
        """Messages a node must combine on the way up: children count."""
        return len(self.children(node))

    def depth(self) -> int:
        """The longest root-to-leaf path length (0 for a single node)."""
        depth = 0
        rank = self.n_nodes - 1
        while rank > 0:
            rank = (rank - 1) // self.arity
            depth += 1
        return depth

    def _check(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise CollectiveError(
                f"node {node} is not a node of a {self.n_nodes}-node tree"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CombiningTree(n_nodes={self.n_nodes}, root={self.root}, "
            f"arity={self.arity})"
        )
