"""The NIC-offloaded execution engine for collective handler programs.

:class:`NicHandlerEngine` plays the role of a handler processor sitting
*at the interface*: every cycle it services each node's interface by
reading ``MsgIp`` (the Figure 7 hardware), running the handler program
the register names, and issuing ``NEXT`` — the single-register-indirect-
jump dispatch loop of Section 2.2.3, with the handler body being a
collective step from :mod:`repro.collectives.programs`.  The TAM
scheduler and the node service loop are never involved: the processor's
only contributions are the initial :meth:`enter` call per node and
observing completion, which is the offload the eval measures.

Dispatch fidelity matters here.  The engine does not look at the
message's words to find its program — it reads the interface's ``MsgIp``
register, exactly as software would:

* under no boundary condition, ``MsgIp`` *is* the program IP (case 2)
  and the engine jumps straight to it;
* under ``iafull`` / ``oafull`` (which really happen under combining
  fan-in), ``MsgIp`` is a dispatch-table slot address.  The engine
  decodes it with :func:`repro.nic.dispatch.decode_table_address`,
  records which of the four handler versions the hardware selected, and
  then does what the table-resident type-0 boundary handler does: load
  word 1 and jump — the software completing the dispatch the hardware
  declined to shortcut.

Outgoing messages model ``oafull`` backpressure: a send that stalls
(output queue full) parks the message on a per-node pending deque and
retries next cycle, so a congested fabric really does push the engine
into the boundary-dispatch versions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.collectives.programs import (
    PROGRAMS,
    HandlerContext,
    enter as program_enter,
)
from repro.collectives.tree import CombiningTree
from repro.errors import CollectiveError, NetworkError
from repro.network.fabric import Fabric
from repro.network.topology import Topology
from repro.nic.dispatch import (
    HANDLER_ID_NO_MESSAGE,
    TABLE_BYTES,
    decode_table_address,
)
from repro.nic.interface import NetworkInterface, SendResult
from repro.nic.messages import Message
from repro.nic.queues import DEFAULT_CAPACITY
from repro.sim import SimComponent, SimKernel

#: Where the engine parks each interface's dispatch table; any
#: table-aligned address outside the program-IP region works.
NIC_IP_BASE = 0x0008_0000


class _EngineContext(HandlerContext):
    """A node's handler context bound to the engine's send queue."""

    def __init__(
        self,
        node: int,
        tree: CombiningTree,
        kind: str,
        op: str,
        pending: Deque[Message],
        engine: "NicHandlerEngine",
    ) -> None:
        super().__init__(node, tree, kind, op)
        self._pending = pending
        self._engine = engine

    def emit(self, message: Message) -> None:
        self._pending.append(message)
        lineage = self._engine.lineage
        if lineage is not None:
            # The NI recomposes this message at flush time, so note the
            # causal parents now, keyed on the pending object, and bind
            # them to the real send record in _flush_sends.
            lineage.collective_emit(self.node, message)


@dataclass
class DispatchStats:
    """How the engine's dispatches split across the Figure 7 cases."""

    case2: int = 0
    boundary: int = 0
    #: (iafull, oafull) -> count of table-slot selections under boundary.
    slots: Dict[tuple, int] = field(default_factory=dict)

    def record_slot(self, iafull: bool, oafull: bool) -> None:
        self.boundary += 1
        key = (iafull, oafull)
        self.slots[key] = self.slots.get(key, 0) + 1


class _FabricComponent(SimComponent):
    """The fabric under the kernel (mirrors the cluster's wrapper)."""

    name = "fabric"

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def tick(self, cycle: int) -> None:
        if self.fabric.pending():
            self.fabric.step()

    def quiescent(self) -> bool:
        return self.fabric.pending() == 0

    def snapshot(self):
        return self.fabric.snapshot()


class NicHandlerEngine(SimComponent):
    """Runs collective handler programs at every interface, NIC-side."""

    name = "nic-handlers"

    def __init__(
        self,
        fabric: Fabric,
        tree: CombiningTree,
        kind: str,
        op: str = "sum",
        ip_base: int = NIC_IP_BASE,
        step_cycles: int = 0,
    ) -> None:
        if fabric.topology.n_nodes != tree.n_nodes:
            raise CollectiveError(
                f"tree over {tree.n_nodes} nodes on a "
                f"{fabric.topology.n_nodes}-node fabric"
            )
        self.fabric = fabric
        self.tree = tree
        self.kind = kind
        #: Handler occupancy: cycles one step keeps the handler busy.
        #: ``0`` is an infinitely fast NIC (drain everything each cycle);
        #: ``k >= 2`` retires a step every ``k`` cycles — slower than the
        #: fabric's one-eject-per-cycle, so the input queue really builds
        #: toward ``iafull`` and the boundary dispatch versions fire.
        self.step_cycles = step_cycles
        self._busy: List[int] = [0] * tree.n_nodes
        self.dispatch_stats = DispatchStats()
        self.enters = 0
        self._pending: List[Deque[Message]] = [
            deque() for _ in range(tree.n_nodes)
        ]
        self.lineage = None
        self.contexts: List[_EngineContext] = [
            _EngineContext(node, tree, kind, op, self._pending[node], self)
            for node in range(tree.n_nodes)
        ]
        for interface in fabric.interfaces:
            interface.ip_base = ip_base

    def attach_lineage(self, lineage) -> None:
        """Opt in to causal lineage: consumed messages become parents of
        the emissions they trigger (combining-tree fan-in/fan-out)."""
        self.lineage = lineage

    # ------------------------------------------------------------------
    # Processor-side surface: initiation and completion.
    # ------------------------------------------------------------------

    def enter(self, node: int, value=0) -> None:
        """The processor enters ``node`` into the collective."""
        self.enters += 1
        program_enter(self.contexts[node], value)

    @property
    def done(self) -> bool:
        return all(ctx.state.completed for ctx in self.contexts)

    @property
    def results(self) -> Dict[int, object]:
        return {
            ctx.node: ctx.state.result
            for ctx in self.contexts
            if ctx.state.completed
        }

    def events(self) -> Dict[str, int]:
        """Aggregate handler-event counts across all nodes."""
        totals = {"handled": 0, "sends": 0, "combines": 0}
        for ctx in self.contexts:
            for key, count in ctx.state.events.items():
                totals[key] += count
        return totals

    # ------------------------------------------------------------------
    # The per-cycle handler loop.
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        for node, interface in enumerate(self.fabric.interfaces):
            self._flush_sends(node, interface)
            self._service(node, interface)

    def _flush_sends(self, node: int, interface: NetworkInterface) -> None:
        pending = self._pending[node]
        while pending:
            message = pending[0]
            for index, word in enumerate(message.words):
                interface.write_output(index, word)
            if interface.send(message.mtype) is not SendResult.SENT:
                return  # oafull: retry next cycle, order preserved
            pending.popleft()
            if self.lineage is not None:
                self.lineage.bind_deferred(message)

    def _service(self, node: int, interface: NetworkInterface) -> None:
        ctx = self.contexts[node]
        if self._busy[node] > 0:
            self._busy[node] -= 1
            return
        while interface.msg_valid:
            ip = self._dispatch_ip(interface)
            program = PROGRAMS.get(ip)
            if program is None:
                raise CollectiveError(
                    f"node {node}: MsgIp {ip:#x} names no collective program"
                )
            message = interface.current_message
            ctx.state.events["handled"] += 1
            lineage = self.lineage
            if lineage is not None:
                lineage.begin_collective_handler(node, message)
            program(ctx, message)
            if lineage is not None:
                lineage.end_collective_handler(node)
            interface.next()
            if self.step_cycles:
                self._busy[node] = self.step_cycles - 1
                return

    def _dispatch_ip(self, interface: NetworkInterface) -> int:
        """Read MsgIp and, under a boundary condition, finish the dispatch
        the way the table-resident type-0 handler version would."""
        ip = interface.msg_ip
        if (ip & ~(TABLE_BYTES - 1)) != (
            interface.ip_base & ~(TABLE_BYTES - 1)
        ):
            self.dispatch_stats.case2 += 1
            return ip
        handler_id, iafull, oafull = decode_table_address(ip)
        if handler_id != HANDLER_ID_NO_MESSAGE:
            raise CollectiveError(
                f"node {interface.node}: boundary dispatch selected handler "
                f"{handler_id}, but collectives only send type 0"
            )
        self.dispatch_stats.record_slot(iafull, oafull)
        return interface.current_message.word(1)

    # ------------------------------------------------------------------
    # Kernel contract.
    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        return not any(self._pending) and not any(
            ni.msg_valid or ni.input_queue.depth
            for ni in self.fabric.interfaces
        )

    def snapshot(self):
        return {
            "pending_sends": sum(len(q) for q in self._pending),
            "msg_valid": sum(
                1 for ni in self.fabric.interfaces if ni.msg_valid
            ),
            "completed": sum(
                1 for ctx in self.contexts if ctx.state.completed
            ),
        }


@dataclass
class CollectiveRun:
    """Everything one collective execution produced, engine-agnostic."""

    kind: str
    variant: str  # "nic" or "proc"
    n_nodes: int
    results: Dict[int, object]
    cycles: int
    #: handled / sends / combines, summed over nodes.
    events: Dict[str, int]
    fabric_delivered: int
    fabric_hops: int
    fabric_cycles: int
    dispatch: Optional[DispatchStats] = None


def run_nic_collective(
    kind: str,
    topology: Topology,
    op: str = "sum",
    values: Optional[Sequence] = None,
    root: int = 0,
    arity: int = 2,
    link_buffer_depth: int = 4,
    serialization_cycles: int = 6,
    input_capacity: int = DEFAULT_CAPACITY,
    output_capacity: int = DEFAULT_CAPACITY,
    iq_threshold: Optional[int] = None,
    step_cycles: int = 0,
    max_cycles: int = 200_000,
    lineage=None,
) -> CollectiveRun:
    """Run one collective entirely NIC-side and return its record.

    ``values`` holds each node's contribution (reduce/allreduce) or the
    root's payload (broadcast; a sequence there means a scatter/gather
    multi-word broadcast); it defaults to ``range(n_nodes)``.
    """
    n = topology.n_nodes
    if values is None:
        values = list(range(n))
    interfaces = [
        NetworkInterface(
            node=i,
            input_capacity=input_capacity,
            output_capacity=output_capacity,
        )
        for i in range(n)
    ]
    if iq_threshold is not None:
        for interface in interfaces:
            interface.control["iq_threshold"] = iq_threshold
    fabric = Fabric(
        topology,
        interfaces,
        link_buffer_depth=link_buffer_depth,
        serialization_cycles=serialization_cycles,
        lineage=lineage,
    )
    tree = CombiningTree(n, root=root, arity=arity)
    engine = NicHandlerEngine(fabric, tree, kind, op, step_cycles=step_cycles)
    if lineage is not None:
        engine.attach_lineage(lineage)
    kernel = SimKernel()
    kernel.register(_FabricComponent(fabric))
    kernel.register(engine)
    for node in range(n):
        engine.enter(node, values[node])
    result = kernel.run(
        max_cycles=max_cycles,
        stall_error=NetworkError,
        label=f"nic-{kind}",
    )
    if not engine.done:
        missing = [c.node for c in engine.contexts if not c.state.completed]
        raise CollectiveError(
            f"{kind} quiesced with {len(missing)} nodes incomplete: "
            f"{missing[:8]}"
        )
    return CollectiveRun(
        kind=kind,
        variant="nic",
        n_nodes=n,
        results=engine.results,
        cycles=result.cycles,
        events=engine.events(),
        fabric_delivered=fabric.stats.delivered,
        fabric_hops=fabric.stats.total_hops,
        fabric_cycles=fabric.stats.cycles,
        dispatch=engine.dispatch_stats,
    )
