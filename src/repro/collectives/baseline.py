"""The processor-driven baseline: the same collectives, run as inlets.

This variant executes the *identical* step functions from
:mod:`repro.collectives.programs`, but installs them as node inlets under
:class:`repro.api.cluster.Cluster`: every arriving step message wakes the
node's poll/dispatch/handle service loop, is dispatched by the type-0
``handle_send`` handler through the inlet registry, and every outgoing
message goes through the processor's ``send_with_retry`` path.  That is
the conventional design the paper's interface competes with — the
processor does all the protocol work — and it is what the NIC-offloaded
engine is measured against.

Because the step functions, the tree, and the combine operations are
shared, the final per-node results are identical to the NIC variant by
construction; the difference the eval prices is *where the steps ran*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api.cluster import Cluster
from repro.collectives.engine import CollectiveRun
from repro.collectives.programs import (
    PROGRAMS,
    HandlerContext,
    enter as program_enter,
)
from repro.collectives.tree import CombiningTree
from repro.errors import CollectiveError
from repro.network.topology import Topology
from repro.nic.messages import Message
from repro.node.node import Node


class _ProcContext(HandlerContext):
    """A node's handler context bound to the processor send path."""

    def __init__(
        self, node: Node, tree: CombiningTree, kind: str, op: str
    ) -> None:
        super().__init__(node.node_id, tree, kind, op)
        self._node = node

    def emit(self, message: Message) -> None:
        # The processor composes into the output registers and SENDs,
        # stalling through the drain hook when the queue is full — the
        # paper's Section 3.1 send sequence, charged to the processor.
        interface = self._node.interface
        for index, word in enumerate(message.words):
            interface.write_output(index, word)
        self._node.send_with_retry(message.mtype)


def _install(cluster: Cluster, contexts: List[_ProcContext]) -> None:
    for node, ctx in zip(cluster.nodes, contexts):
        for ip, program in PROGRAMS.items():

            def inlet(_node: Node, message: Message, _p=program, _c=ctx) -> None:
                _p(_c, message)

            node.register_inlet(inlet, ip=ip)


def run_proc_collective(
    kind: str,
    topology: Topology,
    op: str = "sum",
    values: Optional[Sequence] = None,
    root: int = 0,
    arity: int = 2,
    link_buffer_depth: int = 4,
    serialization_cycles: int = 6,
    max_rounds: int = 200_000,
) -> CollectiveRun:
    """Run one collective processor-side and return its record.

    Same contract as
    :func:`repro.collectives.engine.run_nic_collective`: ``values`` holds
    contributions (reduce/allreduce) or the root payload (broadcast) and
    defaults to ``range(n_nodes)``.
    """
    n = topology.n_nodes
    if values is None:
        values = list(range(n))
    cluster = Cluster(
        topology,
        link_buffer_depth=link_buffer_depth,
        serialization_cycles=serialization_cycles,
    )
    tree = CombiningTree(n, root=root, arity=arity)
    contexts = [
        _ProcContext(node, tree, kind, op) for node in cluster.nodes
    ]
    _install(cluster, contexts)
    for node_id in range(n):
        program_enter(contexts[node_id], values[node_id])
    cycles = cluster.run(max_rounds=max_rounds)
    incomplete = [c.node for c in contexts if not c.state.completed]
    if incomplete:
        raise CollectiveError(
            f"{kind} quiesced with {len(incomplete)} nodes incomplete: "
            f"{incomplete[:8]}"
        )
    events = {"handled": 0, "sends": 0, "combines": 0}
    for ctx in contexts:
        for key, count in ctx.state.events.items():
            events[key] += count
    # Steps here are dispatched by the node service loop, not the
    # contexts, so "handled" is the loop's own count of messages.
    events["handled"] = cluster.total_messages_handled()
    results: Dict[int, object] = {
        ctx.node: ctx.state.result for ctx in contexts
    }
    return CollectiveRun(
        kind=kind,
        variant="proc",
        n_nodes=n,
        results=results,
        cycles=cycles,
        events=events,
        fabric_delivered=cluster.fabric.stats.delivered,
        fabric_hops=cluster.fabric.stats.total_hops,
        fabric_cycles=cluster.fabric.stats.cycles,
        dispatch=None,
    )
