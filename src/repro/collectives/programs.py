"""Collective handler programs: the steps both execution engines share.

A collective here is a small state machine per node whose transitions
are *handler programs* — the code a message dispatches to through the
``MsgIp`` path (Figure 7 case 2: the program's IP travels in word 1 of
the message).  Each step does everything the protocol needs — combine
the carried value into the node's accumulator, update the state, send
the next tree message(s) — and returns, sPIN-style; nothing in a step
requires the processor-driven scheduler.

The same step functions are executed by two engines:

* :class:`repro.collectives.engine.NicHandlerEngine` runs them at the
  interface, the NIC-offloaded variant;
* :mod:`repro.collectives.baseline` registers them as node inlets under
  the cluster's service loop, the processor-driven variant.

Both see the identical messages and state transitions, so the final
values are identical by construction; only *who executes the step* (and
therefore whose cycles are charged) differs.

Message convention (all collective traffic is type 0)::

    m0  destination | low bits = sender's tree rank
    m1  program IP (the MsgIp contract)
    m2  carried value (combine contribution or broadcast value)
    m3, m4  scatter/gather fragment values (multi-word broadcast only)

Multi-word broadcasts ride the scatter/gather framing of
:mod:`repro.nic.messages`: word 2 holds the fragment header and each
fragment is forwarded to the node's children *immediately* on arrival
(cut-through), while a :class:`~repro.nic.messages.GatherAssembler`
rebuilds the payload locally — streaming through the tree rather than
store-and-forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.collectives.tree import CombiningTree
from repro.errors import CollectiveError
from repro.nic.messages import (
    TYPE_MSG_IP,
    GatherAssembler,
    Message,
    build_gather_messages,
    pack_destination,
)

#: The collective program region: well clear of the node auto-inlet
#: region (0x4000+) so both engines can install the same IPs.
PROGRAM_IP_BASE = 0x5000

UP_IP = PROGRAM_IP_BASE
"""Combine-up step: fold a child's contribution, forward when complete."""

DOWN_IP = PROGRAM_IP_BASE + 0x10
"""Broadcast-down step: record the value, forward to children."""

DOWN_SG_IP = PROGRAM_IP_BASE + 0x20
"""Scatter/gather broadcast-down step: cut-through fragment forwarding."""

#: The collective operations; all are associative and commutative over
#: machine words, so the result is independent of arrival order — the
#: property that lets two engines with different timing agree exactly.
OPS: Dict[str, Callable[[int, int], int]] = {
    "sum": lambda a, b: (a + b) & 0xFFFFFFFF,
    "max": max,
    "min": min,
    "bor": lambda a, b: a | b,
}

COLLECTIVES = ("barrier", "broadcast", "reduce", "allreduce")


@dataclass
class CollectiveState:
    """Per-node collective state: what a NIC handler keeps in registers."""

    arrived: int = 0
    acc: int = 0
    completed: bool = False
    result: object = None
    assembler: Optional[GatherAssembler] = None
    events: Dict[str, int] = field(
        default_factory=lambda: {"handled": 0, "sends": 0, "combines": 0}
    )


class HandlerContext:
    """What a handler program may touch: one node's view of the machine.

    Engines subclass and supply :meth:`emit` (queue one outgoing
    message, charged as a send) — everything else is shared bookkeeping.
    """

    def __init__(
        self, node: int, tree: CombiningTree, kind: str, op: str = "sum"
    ) -> None:
        if kind not in COLLECTIVES:
            raise CollectiveError(
                f"unknown collective {kind!r}; known: {', '.join(COLLECTIVES)}"
            )
        if op not in OPS:
            raise CollectiveError(
                f"unknown collective op {op!r}; known: {', '.join(OPS)}"
            )
        self.node = node
        self.tree = tree
        self.kind = kind
        self.op = OPS[op]
        self.state = CollectiveState()

    def emit(self, message: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def send(self, message: Message) -> None:
        self.state.events["sends"] += 1
        self.emit(message)

    def complete(self, value) -> None:
        state = self.state
        if state.completed:
            raise CollectiveError(
                f"node {self.node} completed the {self.kind} twice"
            )
        state.completed = True
        state.result = value


def make_step_message(
    destination: int, ip: int, value: int, sender_rank: int
) -> Message:
    """A single-value collective step message (type 0, IP in word 1)."""
    return Message(
        TYPE_MSG_IP,
        (pack_destination(destination, sender_rank), ip, value, 0, 0),
    )


def retarget_fragment(message: Message, destination: int) -> Message:
    """A copy of a fragment addressed to ``destination`` (same low bits)."""
    return Message(
        message.mtype,
        (pack_destination(destination, message.m0_low),) + message.words[1:],
        pin=message.pin,
    )


# ----------------------------------------------------------------------
# The step functions.
# ----------------------------------------------------------------------


def _up_contribution(ctx: HandlerContext, value: int) -> None:
    """Fold one contribution (own entry or a child's subtree) upward."""
    state = ctx.state
    if state.arrived == 0:
        state.acc = value
    else:
        state.acc = ctx.op(state.acc, value)
        state.events["combines"] += 1
    state.arrived += 1
    expected = ctx.tree.fan_in(ctx.node) + 1  # children + own entry
    if state.arrived > expected:
        raise CollectiveError(
            f"node {ctx.node} received {state.arrived} contributions, "
            f"expected {expected}"
        )
    if state.arrived < expected:
        return
    parent = ctx.tree.parent(ctx.node)
    if parent is not None:
        ctx.send(
            make_step_message(
                parent, UP_IP, state.acc, ctx.tree.rank(ctx.node)
            )
        )
        if ctx.kind == "reduce":
            # A reduce completes off-root with its subtree partial — a
            # deterministic value, so the two engines still agree.
            ctx.complete(state.acc)
        return
    # Root: the reduction is complete.
    if ctx.kind == "reduce":
        ctx.complete(state.acc)
    else:  # barrier / allreduce: release downward
        _down_value(ctx, state.acc)


def _down_value(ctx: HandlerContext, value: int) -> None:
    """Deliver ``value`` here and forward it to the subtree."""
    for child in ctx.tree.children(ctx.node):
        ctx.send(
            make_step_message(child, DOWN_IP, value, ctx.tree.rank(ctx.node))
        )
    ctx.complete(value)


def _down_fragment(ctx: HandlerContext, message: Message) -> None:
    """Cut-through one broadcast fragment: forward first, then fold in."""
    for child in ctx.tree.children(ctx.node):
        ctx.send(retarget_fragment(message, child))
    state = ctx.state
    if state.assembler is None:
        state.assembler = GatherAssembler()
    if state.assembler.accept(message):
        ctx.complete(tuple(value for _, value in state.assembler.result()))


def program_up(ctx: HandlerContext, message: Message) -> None:
    """The UP_IP handler program: one arriving subtree contribution."""
    _up_contribution(ctx, message.word(2))


def program_down(ctx: HandlerContext, message: Message) -> None:
    """The DOWN_IP handler program: one arriving broadcast value."""
    _down_value(ctx, message.word(2))


def program_down_sg(ctx: HandlerContext, message: Message) -> None:
    """The DOWN_SG_IP handler program: one arriving broadcast fragment."""
    _down_fragment(ctx, message)


PROGRAMS: Dict[int, Callable[[HandlerContext, Message], None]] = {
    UP_IP: program_up,
    DOWN_IP: program_down,
    DOWN_SG_IP: program_down_sg,
}


def enter(ctx: HandlerContext, value=0) -> None:
    """Processor-side initiation: the node enters the collective.

    This is the only step the *processor* performs in the NIC-offloaded
    variant (plus observing completion); every subsequent step runs in a
    handler.  Barrier contributes a token, reduce/allreduce contribute
    ``value``, broadcast starts the downward phase at the root (and is a
    no-op elsewhere — those nodes complete when the value arrives).
    """
    if ctx.kind == "barrier":
        _up_contribution(ctx, 1)
    elif ctx.kind in ("reduce", "allreduce"):
        _up_contribution(ctx, int(value))
    elif ctx.tree.rank(ctx.node) == 0:  # broadcast root
        payload = _as_payload(value)
        if len(payload) == 1:
            _down_value(ctx, payload[0])
        else:
            for fragment in build_gather_messages(
                TYPE_MSG_IP,
                ctx.node,  # placeholder destination; retargeted per child
                list(enumerate(payload)),
                ip=DOWN_SG_IP,
                m0_low=ctx.tree.rank(ctx.node),
            ):
                for child in ctx.tree.children(ctx.node):
                    ctx.send(retarget_fragment(fragment, child))
            ctx.complete(tuple(payload))


def _as_payload(value) -> Tuple[int, ...]:
    if isinstance(value, (tuple, list)):
        if not value:
            raise CollectiveError("broadcast payload must not be empty")
        return tuple(int(v) for v in value)
    return (int(value),)


def expected_result(
    kind: str, op: str, tree: CombiningTree, values: Sequence
) -> Dict[int, object]:
    """The closed-form per-node results, for verification.

    ``values`` holds each node's contribution (reduce/allreduce) or the
    root's payload at index ``tree.root`` (broadcast); barriers ignore it.
    """
    n = tree.n_nodes
    if kind == "barrier":
        return {node: n for node in range(n)}
    if kind == "broadcast":
        payload = _as_payload(values[tree.root])
        result = payload[0] if len(payload) == 1 else tuple(payload)
        return {node: result for node in range(n)}
    fold = OPS[op]

    def subtree(node: int) -> int:
        acc = int(values[node])
        for child in tree.children(node):
            acc = fold(acc, subtree(child))
        return acc

    if kind == "allreduce":
        total = subtree(tree.root)
        return {node: total for node in range(n)}
    return {node: subtree(node) for node in range(n)}
