"""NIC-offloaded collectives over the tightly-coupled interface.

Barrier, broadcast, reduce, and allreduce expressed as *handler
programs* dispatched through the ``MsgIp`` path — each step combines,
updates state, and forwards entirely at the interface, sPIN-style —
plus the processor-driven baseline that runs the identical steps as
node inlets under the cluster's service loop.

* :mod:`repro.collectives.tree` — the combining-tree structure;
* :mod:`repro.collectives.programs` — the shared step functions;
* :mod:`repro.collectives.engine` — the NIC-side execution engine;
* :mod:`repro.collectives.baseline` — the processor-side baseline;
* :mod:`repro.collectives.costs` — post-hoc cycle pricing per cost model.
"""

from repro.collectives.baseline import run_proc_collective
from repro.collectives.costs import price_run
from repro.collectives.engine import (
    CollectiveRun,
    NicHandlerEngine,
    run_nic_collective,
)
from repro.collectives.programs import (
    COLLECTIVES,
    DOWN_IP,
    DOWN_SG_IP,
    OPS,
    PROGRAMS,
    UP_IP,
    HandlerContext,
    expected_result,
)
from repro.collectives.tree import CombiningTree

__all__ = [
    "COLLECTIVES",
    "CollectiveRun",
    "CombiningTree",
    "DOWN_IP",
    "DOWN_SG_IP",
    "HandlerContext",
    "NicHandlerEngine",
    "OPS",
    "PROGRAMS",
    "UP_IP",
    "expected_result",
    "price_run",
    "run_nic_collective",
    "run_proc_collective",
]
