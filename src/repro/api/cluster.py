"""High-level user API: build a machine, issue remote operations.

:class:`Cluster` assembles nodes over a topology and runs the whole thing
to quiescence: fabric cycles interleaved with node service loops.  On top
of that it offers the message-passing operations of the paper's protocol
as ordinary Python calls — remote read/write, I-structure read/write, and
thread invocation (Send) — each of which really travels through the
architectural interface, the routers, and the handlers.

This is the entry point the examples use::

    cluster = Cluster(Mesh2D(4, 4))
    cluster.node(5).memory.store(0x100, 42)
    value = cluster.remote_read(source=0, target=5, address=0x100)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import NetworkError
from repro.network.fabric import Fabric
from repro.network.topology import Mesh2D, Topology
from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message, pack_destination
from repro.node.handlers import (
    build_pread_request,
    build_pwrite_request,
    build_read_request,
    build_send,
    build_write_request,
)
from repro.node.node import Node
from repro.obs.metrics import MetricsRecorder
from repro.obs.profiler import SimProfiler
from repro.obs.tracer import Tracer
from repro.sim import SimComponent, SimKernel


class _FabricComponent(SimComponent):
    """The fabric under the kernel: steps only while traffic is pending,
    so node-only service rounds do not advance ``fabric.stats.cycles``."""

    name = "fabric"

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric

    def tick(self, cycle: int) -> None:
        if self.fabric.pending():
            self.fabric.step()

    def quiescent(self) -> bool:
        return self.fabric.pending() == 0

    def snapshot(self):
        return self.fabric.snapshot()


class _NodeComponent(SimComponent):
    """One node's poll/dispatch/handle loop as a kernel component."""

    def __init__(self, node: Node) -> None:
        self.node = node
        self.name = f"node{node.node_id}"

    def tick(self, cycle: int) -> None:
        self.node.service()

    def quiescent(self) -> bool:
        return self.node.idle and not self.node.interface.status.has_exception

    def snapshot(self):
        interface = self.node.interface
        return {
            "input_queue": interface.input_queue.depth,
            "output_queue": interface.output_queue.depth,
            "msg_valid": interface.msg_valid,
        }


@dataclass
class RemoteValue:
    """A pending reply: filled in when the reply message arrives.

    The thread-identity words of the request (FP/IP) name the inlet that
    fills this in — the software side of the remote-read protocol of
    Section 2.1.4.
    """

    ready: bool = False
    value: int = 0

    def get(self) -> int:
        if not self.ready:
            raise NetworkError("remote value not yet delivered")
        return self.value


class Cluster:
    """A whole machine: nodes, fabric, and a quiescence driver."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        link_buffer_depth: int = 4,
        serialization_cycles: int = 6,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRecorder] = None,
        profiler: Optional[SimProfiler] = None,
        kernel_fast_forward: bool = True,
        input_capacity: Optional[int] = None,
        output_capacity: Optional[int] = None,
    ) -> None:
        self.topology = topology or Mesh2D(2, 2)
        # Queue depths default to the interface's own (None); explicit
        # values size every node's queues, e.g. for tenancy studies that
        # want shallow input queues so per-tenant caps actually bind.
        nic_kwargs = {}
        if input_capacity is not None:
            nic_kwargs["input_capacity"] = input_capacity
        if output_capacity is not None:
            nic_kwargs["output_capacity"] = output_capacity
        self.nodes: List[Node] = [
            Node(
                node_id,
                interface=(
                    NetworkInterface(node=node_id, **nic_kwargs)
                    if nic_kwargs
                    else None
                ),
            )
            for node_id in range(self.topology.n_nodes)
        ]
        self.fabric = Fabric(
            self.topology,
            [node.interface for node in self.nodes],
            link_buffer_depth=link_buffer_depth,
            serialization_cycles=serialization_cycles,
            tracer=tracer,
            metrics=metrics,
        )
        for node in self.nodes:
            node.set_drain_hook(self.fabric.step)
        # One kernel for the whole machine, registered in service order:
        # the fabric moves messages first, then every node drains what
        # arrived — the ordering guarantee the kernel pins.
        # ``kernel_fast_forward=False`` pins the literal cycle-by-cycle
        # loop (no idle-cycle skipping), for audits that want every
        # cycle to execute.
        self._kernel = SimKernel(fast_forward=kernel_fast_forward)
        self._kernel.register(_FabricComponent(self.fabric))
        for node in self.nodes:
            self._kernel.register(_NodeComponent(node))
        # Per-component cycle attribution across every run() this
        # cluster performs; None keeps the kernel's unprofiled loop.
        self.profiler = profiler
        if profiler is not None:
            self._kernel.attach_profiler(profiler)

    def node(self, node_id: int) -> Node:
        self.topology.check_node(node_id)
        return self.nodes[node_id]

    @property
    def kernel(self) -> SimKernel:
        """The cluster's shared simulation kernel (read-only access)."""
        return self._kernel

    def add_component(self, component: SimComponent):
        """Register an extra component on the cluster's kernel.

        Components registered here tick *after* the fabric and the nodes
        — a receive-side tenant scheduler
        (:class:`~repro.tenancy.scheduler.TenantPolicy`) or a custom
        traffic source slots into the same cycle loop the built-in
        machinery uses.  Returns the component's
        :class:`~repro.sim.kernel.SimHandle`.
        """
        return self._kernel.register(component)

    @property
    def n_nodes(self) -> int:
        return self.topology.n_nodes

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(self, max_rounds: int = 100_000) -> int:
        """Advance fabric and nodes until the whole machine is quiescent.

        Runs on the shared :class:`~repro.sim.kernel.SimKernel` and
        returns the number of kernel cycles consumed.  One cycle is one
        service round — a fabric step (when traffic is pending) followed
        by every node's service loop — so *every* round that performs
        work consumes simulated time, including rounds where only nodes
        progress.  (The legacy loop counted fabric steps only, so
        node-only service rounds were invisible in the returned count.)
        Quiescent means: no message in any router, output queue, input
        queue, or input registers, and no pending exception.
        """
        return self._kernel.run(
            max_cycles=max_rounds, stall_error=NetworkError, label="cluster"
        ).cycles

    # ------------------------------------------------------------------
    # Remote operations.
    # ------------------------------------------------------------------

    def _install_reply_inlet(self, node_id: int) -> tuple[int, int, RemoteValue]:
        """Register a one-shot inlet that banks a reply value."""
        result = RemoteValue()
        node = self.node(node_id)

        def inlet(_node: Node, message: Message) -> None:
            result.ready = True
            result.value = message.word(2)

        ip = node.register_inlet(inlet)
        reply_fp = pack_destination(node_id, 0)
        return reply_fp, ip, result

    def remote_read(self, source: int, target: int, address: int) -> int:
        """Read ``target``'s memory word at ``address`` from ``source``."""
        reply_fp, reply_ip, result = self._install_reply_inlet(source)
        self._post(source, build_read_request(target, address, reply_fp, reply_ip))
        self.run()
        return result.get()

    def remote_write(self, source: int, target: int, address: int, value: int) -> None:
        """Write ``value`` into ``target``'s memory from ``source``."""
        self._post(source, build_write_request(target, address, value))
        self.run()

    def remote_block_write(
        self, source: int, target: int, address: int, values
    ) -> None:
        """Write consecutive words into ``target``'s memory.

        Issues one Write message per word — the short-message regime the
        paper targets; senders whose output queue fills mid-burst stall
        through the drain hook, exercising the flow-control path.
        """
        for offset, value in enumerate(values):
            self._post(
                source, build_write_request(target, address + 4 * offset, value)
            )
        self.run()

    def remote_block_read(
        self, source: int, target: int, address: int, count: int
    ) -> List[int]:
        """Read ``count`` consecutive words from ``target``'s memory.

        All requests are issued before any reply is awaited, so the reads
        pipeline through the fabric rather than serialising on latency.
        """
        pendings: List[RemoteValue] = []
        for offset in range(count):
            reply_fp, reply_ip, result = self._install_reply_inlet(source)
            pendings.append(result)
            self._post(
                source,
                build_read_request(
                    target, address + 4 * offset, reply_fp, reply_ip
                ),
            )
        self.run()
        return [p.get() for p in pendings]

    def istructure_alloc(self, node_id: int, length: int) -> int:
        """Allocate an I-structure array on ``node_id``; returns its descriptor."""
        return self.node(node_id).istructures.allocate(length)

    def istructure_read(
        self, source: int, target: int, descriptor: int, index: int
    ) -> RemoteValue:
        """PRead: returns a :class:`RemoteValue` that fills when written.

        Unlike :meth:`remote_read` this does not block on quiescence —
        an empty element legitimately leaves the reader deferred.
        """
        reply_fp, reply_ip, result = self._install_reply_inlet(source)
        self._post(
            source, build_pread_request(target, descriptor, index, reply_fp, reply_ip)
        )
        self.run()
        return result

    def istructure_write(
        self, source: int, target: int, descriptor: int, index: int, value: int
    ) -> None:
        """PWrite: store once; satisfies any deferred readers."""
        self._post(source, build_pwrite_request(target, descriptor, index, value))
        self.run()

    def spawn(
        self,
        source: int,
        target: int,
        inlet_ip: int,
        data=(),
        fp_low: int = 0,
    ) -> None:
        """Send a type-0 message invoking ``inlet_ip`` on ``target``."""
        self._post(source, build_send(target, fp_low, inlet_ip, data))
        self.run()

    def _post(self, source: int, message: Message) -> None:
        """Queue an already-composed message at ``source``'s interface."""
        node = self.node(source)
        ni = node.interface
        for index, word in enumerate(message.words):
            ni.write_output(index, word)
        node.send_with_retry(message.mtype)

    # ------------------------------------------------------------------
    # Whole-machine statistics.
    # ------------------------------------------------------------------

    def total_messages_handled(self) -> int:
        return sum(node.stats.handled for node in self.nodes)

    def istructure_stats(self):
        """Merged I-structure outcome statistics across all nodes."""
        from repro.node.istructure import IStructureStats

        merged = IStructureStats()
        for node in self.nodes:
            merged.merge(node.istructures.stats)
        return merged
