"""High-level user API: clusters and remote operations."""

from repro.api.cluster import Cluster, RemoteValue

__all__ = ["Cluster", "RemoteValue"]
