"""A processor node: interface + memory + I-structures + service loop.

The :class:`Node` is the behavioural counterpart of one machine node in
the paper's system: its network interface (the architecture of Section 2),
its local word memory, its I-structure heap, and the handler table the
optimized dispatch indexes by message type.

``service()`` is the software poll/dispatch/handle loop of Figure 6: while
a message occupies the input registers, dispatch on its type, run the
handler, then ``NEXT``.  Dispatch is type-indexed, mirroring the MsgIp
hardware; the handlers themselves use the REPLY / FORWARD hardware modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import MessageFormatError, QueueOverflowError
from repro.nic.interface import NetworkInterface, SendMode, SendResult
from repro.nic.messages import Message
from repro.node.handlers import DEFAULT_HANDLERS, Handler
from repro.node.istructure import IStructureMemory
from repro.node.memory import Memory


@dataclass
class NodeStats:
    """Per-node message accounting."""

    handled: int = 0
    handled_by_type: Dict[int, int] = field(default_factory=dict)
    send_retries: int = 0
    exceptions_handled: int = 0

    def count(self, mtype: int) -> None:
        self.handled += 1
        self.handled_by_type[mtype] = self.handled_by_type.get(mtype, 0) + 1


class Node:
    """One node of the multicomputer."""

    def __init__(
        self,
        node_id: int,
        interface: Optional[NetworkInterface] = None,
        handlers: Optional[Dict[int, Handler]] = None,
    ) -> None:
        self.node_id = node_id
        self.interface = interface or NetworkInterface(node=node_id)
        self.memory = Memory()
        self.istructures = IStructureMemory()
        self.handlers: Dict[int, Handler] = dict(
            handlers if handlers is not None else DEFAULT_HANDLERS
        )
        self.inlets: Dict[int, Callable[["Node", Message], None]] = {}
        self.escape_handlers: Dict[int, Handler] = {}
        self._next_inlet_ip = 0x4000
        self.stats = NodeStats()
        self._drain_hook: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Software configuration.
    # ------------------------------------------------------------------

    def register_inlet(
        self, fn: Callable[["Node", Message], None], ip: Optional[int] = None
    ) -> int:
        """Install an inlet (the target of a type-0 Send); returns its IP."""
        if ip is None:
            ip = self._next_inlet_ip
            self._next_inlet_ip += 16
        if ip in self.inlets:
            raise MessageFormatError(f"inlet IP {ip:#x} already registered")
        self.inlets[ip] = fn
        return ip

    def register_handler(self, mtype: int, handler: Handler) -> None:
        """Install or replace the handler for a message type."""
        self.handlers[mtype] = handler

    def register_escape_handler(self, escape_id: int, handler: Handler) -> None:
        """Install a handler for a rare message kind (Section 2.2.1).

        Escape messages travel with the escape type in the 4-bit field and
        their real 32-bit id in word 4, exactly like every message of the
        basic architecture.
        """
        if escape_id in self.escape_handlers:
            raise MessageFormatError(
                f"escape id {escape_id:#x} already registered"
            )
        self.escape_handlers[escape_id] = handler

    def set_drain_hook(self, hook: Callable[[], None]) -> None:
        """Called when a SEND stalls, to let the network make progress.

        The paper warns that stalling the processor "should not be done if
        the processor needs to participate in emptying the network"; the
        hook is how a full-system driver lets the fabric drain while a
        node's send is blocked.
        """
        self._drain_hook = hook

    # ------------------------------------------------------------------
    # Sending with stall semantics.
    # ------------------------------------------------------------------

    def send_with_retry(
        self, mtype: int, mode: SendMode = SendMode.NORMAL, max_retries: int = 10_000
    ) -> None:
        """SEND, retrying through the drain hook while the queue is full."""
        for _ in range(max_retries):
            if self.interface.send(mtype, mode) is SendResult.SENT:
                return
            self.stats.send_retries += 1
            if self._drain_hook is None:
                raise QueueOverflowError(
                    f"node {self.node_id}: output queue full and no drain hook"
                )
            self._drain_hook()
        raise QueueOverflowError(
            f"node {self.node_id}: send did not complete after {max_retries} retries"
        )

    # ------------------------------------------------------------------
    # The poll / dispatch / handle loop.
    # ------------------------------------------------------------------

    def on_exception(self, fn: Callable[["Node", tuple], None]) -> None:
        """Install the software exception handler (dispatch id 0001).

        The MsgIp hardware forces handler id 1 whenever STATUS reports an
        exceptional condition; the service loop mirrors that priority: the
        exception handler runs before any message handler, receives the
        pending condition names, and the conditions are cleared afterwards
        (the hardware's writable-zero STATUS behaviour).
        """
        self._exception_handler = fn

    _exception_handler: Optional[Callable[["Node", tuple], None]] = None

    def service_one(self) -> bool:
        """Handle the message in the input registers, if any.

        Returns True when a message was handled.  The handler runs with
        the message still in the input registers (REPLY / FORWARD need
        it); NEXT is issued afterwards.  Exceptions preempt message
        dispatch, exactly as the MsgIp priority order does.
        """
        if self.interface.status.has_exception:
            pending = self.interface.status.pending_exceptions()
            if self._exception_handler is not None:
                self._exception_handler(self, pending)
            self.stats.exceptions_handled += 1
            self.interface.status.clear_exceptions()
            self.interface._refresh_status()
            return True
        message = self.interface.current_message
        if message is None:
            return False
        handler = self.handlers.get(message.mtype)
        if handler is None:
            raise MessageFormatError(
                f"node {self.node_id}: no handler for message type {message.mtype}"
            )
        handler(self, message)
        self.stats.count(message.mtype)
        self.interface.next()
        return True

    def service(self, limit: Optional[int] = None) -> int:
        """Handle queued messages until none remain (or ``limit`` reached)."""
        handled = 0
        while self.interface.msg_valid or self.interface.status.has_exception:
            if limit is not None and handled >= limit:
                break
            self.service_one()
            handled += 1
        return handled

    @property
    def idle(self) -> bool:
        """No message pending in the input registers or input queue."""
        return not self.interface.msg_valid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} handled={self.stats.handled}>"
