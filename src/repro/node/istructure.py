"""I-structure memory: presence bits and deferred-reader lists.

I-structures (Arvind, Nikhil & Pingali, cited as [ANP89] in the paper)
give every array element a presence state: *empty* until written, *full*
afterwards, with reads of an empty element *deferred* — queued on the
element — and satisfied the moment the write arrives.  The paper's PRead /
PWrite messages implement exactly this protocol, and its Table 1 prices
the full / empty / deferred paths separately.

This module is the behavioural (Python-level) implementation used by the
node handlers and by the TAM runtime.  Its memory layout matches the
Table 1 kernels exactly (``[tag, value]`` pairs, tag doubling as the
deferred-list head), so the assembly kernels and this model can be checked
against each other, and it additionally counts outcome statistics — the
quantities the paper measured with the Mint simulator ("the ratio of
deferred, full, and empty PReads and PWrites").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.errors import IStructureError


class DeferredReader(NamedTuple):
    """One queued reader: the continuation its reply must invoke.

    A NamedTuple (not a frozen dataclass) because the TAM runtime builds
    one per presence-bit read; construction cost is on the hot path.
    """

    frame_pointer: int
    instruction_pointer: int


@dataclass
class IStructureStats:
    """Outcome counts for the Figure 12 cost accounting."""

    reads_full: int = 0
    reads_empty: int = 0
    reads_deferred: int = 0
    writes_empty: int = 0
    writes_deferred: int = 0
    deferred_readers_satisfied: int = 0

    @property
    def reads(self) -> int:
        return self.reads_full + self.reads_empty + self.reads_deferred

    @property
    def writes(self) -> int:
        return self.writes_empty + self.writes_deferred

    def merge(self, other: "IStructureStats") -> None:
        self.reads_full += other.reads_full
        self.reads_empty += other.reads_empty
        self.reads_deferred += other.reads_deferred
        self.writes_empty += other.writes_empty
        self.writes_deferred += other.writes_deferred
        self.deferred_readers_satisfied += other.deferred_readers_satisfied


class _Element:
    __slots__ = ("full", "value", "waiters")

    def __init__(self) -> None:
        self.full = False
        self.value = 0
        self.waiters: List[DeferredReader] = []


class IStructureMemory:
    """A node's I-structure heap: arrays of write-once elements."""

    def __init__(self) -> None:
        self._arrays: Dict[int, List[_Element]] = {}
        self._next_descriptor = 0x10_000
        self.stats = IStructureStats()

    def allocate(self, length: int) -> int:
        """Allocate an array of ``length`` empty elements; returns its descriptor."""
        if length < 0:
            raise IStructureError(f"negative I-structure length {length}")
        descriptor = self._next_descriptor
        # Element stride of 8 bytes keeps descriptors compatible with the
        # Table 1 kernels' address arithmetic.
        self._next_descriptor += max(8, length * 8)
        self._arrays[descriptor] = [_Element() for _ in range(length)]
        return descriptor

    def _element(self, descriptor: int, index: int) -> _Element:
        try:
            array = self._arrays[descriptor]
        except KeyError:
            raise IStructureError(f"unknown I-structure descriptor {descriptor:#x}") from None
        if index < 0 or index >= len(array):
            raise IStructureError(
                f"index {index} outside I-structure of {len(array)} elements"
            )
        return array[index]

    def length(self, descriptor: int) -> int:
        try:
            return len(self._arrays[descriptor])
        except KeyError:
            raise IStructureError(f"unknown I-structure descriptor {descriptor:#x}") from None

    # ------------------------------------------------------------------
    # The protocol operations.
    # ------------------------------------------------------------------

    def read(
        self, descriptor: int, index: int, reader: DeferredReader
    ) -> Tuple[str, Optional[int]]:
        """PRead: returns ``("full", value)`` or defers and returns state.

        The state string is one of ``full`` / ``empty`` / ``deferred``,
        matching the Table 1 row that prices the operation.
        """
        # _element inlined: one PRead per IFETCH makes this the hottest
        # I-structure entry point.
        try:
            array = self._arrays[descriptor]
        except KeyError:
            raise IStructureError(f"unknown I-structure descriptor {descriptor:#x}") from None
        if 0 <= index < len(array):
            element = array[index]
        else:
            raise IStructureError(
                f"index {index} outside I-structure of {len(array)} elements"
            )
        if element.full:
            self.stats.reads_full += 1
            return "full", element.value
        if element.waiters:
            self.stats.reads_deferred += 1
            element.waiters.append(reader)
            return "deferred", None
        self.stats.reads_empty += 1
        element.waiters.append(reader)
        return "empty", None

    def write(
        self, descriptor: int, index: int, value: int
    ) -> Tuple[str, List[DeferredReader]]:
        """PWrite: store once; returns the state and any satisfied readers."""
        try:
            array = self._arrays[descriptor]
        except KeyError:
            raise IStructureError(f"unknown I-structure descriptor {descriptor:#x}") from None
        if 0 <= index < len(array):
            element = array[index]
        else:
            raise IStructureError(
                f"index {index} outside I-structure of {len(array)} elements"
            )
        if element.full:
            raise IStructureError(
                f"double write to I-structure {descriptor:#x}[{index}]"
            )
        element.full = True
        element.value = value
        satisfied = element.waiters
        element.waiters = []
        if satisfied:
            self.stats.writes_deferred += 1
            self.stats.deferred_readers_satisfied += len(satisfied)
            return "deferred", satisfied
        self.stats.writes_empty += 1
        return "empty", []

    def peek(self, descriptor: int, index: int) -> Optional[int]:
        """Non-protocol inspection: the value if full, else None."""
        element = self._element(descriptor, index)
        return element.value if element.full else None

    def is_full(self, descriptor: int, index: int) -> bool:
        return self._element(descriptor, index).full

    def waiter_count(self, descriptor: int, index: int) -> int:
        return len(self._element(descriptor, index).waiters)

    def store_sequence(self, descriptor: int, values) -> None:
        """Bulk-write consecutive elements (test and example setup)."""
        for index, value in enumerate(values):
            self.write(descriptor, index, value)
