"""A processor node: local memory, I-structures, handlers, run loop."""

from repro.node.handlers import (
    DEFAULT_HANDLERS,
    build_pread_request,
    build_pwrite_request,
    build_read_request,
    build_send,
    build_write_request,
)
from repro.node.istructure import DeferredReader, IStructureMemory, IStructureStats
from repro.node.memory import Memory
from repro.node.node import Node, NodeStats

__all__ = [
    "DEFAULT_HANDLERS",
    "DeferredReader",
    "IStructureMemory",
    "IStructureStats",
    "Memory",
    "Node",
    "NodeStats",
    "build_pread_request",
    "build_pwrite_request",
    "build_read_request",
    "build_send",
    "build_write_request",
]
