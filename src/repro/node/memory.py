"""Word-addressed local memory for a processor node.

The handler sequences and the TAM runtime only ever move aligned 32-bit
words, so the memory is modelled as a sparse word store.  Addresses are
byte addresses (as the 88100's are) and must be 4-byte aligned; the model
traps misalignment immediately because a misaligned handler address
computation is always a bug in this codebase.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import MachineError
from repro.utils.bitfield import to_word

WORD_BYTES = 4


class Memory:
    """A sparse, word-granular 32-bit memory.

    Uninitialised words read as zero, which matches how the evaluation
    programs use memory (tables are written before they are read; the
    I-structure layer adds its own presence checking on top).
    """

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        self.loads = 0
        self.stores = 0

    @staticmethod
    def _check_address(address: int) -> int:
        if address < 0:
            raise MachineError(f"negative memory address {address:#x}")
        if address % WORD_BYTES:
            raise MachineError(f"misaligned memory address {address:#x}")
        return address

    def load(self, address: int) -> int:
        """Read the word at byte address ``address``."""
        self.loads += 1
        return self._words.get(self._check_address(address), 0)

    def store(self, address: int, value: int) -> None:
        """Write the word at byte address ``address``."""
        self.stores += 1
        self._words[self._check_address(address)] = to_word(value)

    def load_block(self, address: int, count: int) -> List[int]:
        """Read ``count`` consecutive words starting at ``address``."""
        base = self._check_address(address)
        return [self._words.get(base + WORD_BYTES * i, 0) for i in range(count)]

    def store_block(self, address: int, values: Iterable[int]) -> None:
        """Write consecutive words starting at ``address``."""
        base = self._check_address(address)
        for offset, value in enumerate(values):
            self._words[base + WORD_BYTES * offset] = to_word(value)

    def __len__(self) -> int:
        """Number of words ever written."""
        return len(self._words)

    def clear(self) -> None:
        self._words.clear()
