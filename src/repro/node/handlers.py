"""Behavioural message handlers for the full-system simulator.

These are the Python-level equivalents of the Table 1 assembly kernels:
one handler per message type, implementing the protocol of
:mod:`repro.kernels.protocol` against a node's memory and I-structure
heap.  They drive the *architectural* interface operations — replies go
out through the output registers with the hardware REPLY mode, deferred
PWrite readers are satisfied with the hardware FORWARD mode — so the
full-system simulator exercises the same interface features the kernels
price.

Handlers never call ``NEXT``; the node's service loop owns message
lifetime (it must, because FORWARD reads the input registers until the
last deferred reader is satisfied).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from repro.errors import MessageFormatError
from repro.kernels import protocol as P
from repro.nic.interface import SendMode
from repro.nic.messages import Message, pack_destination, unpack_destination
from repro.node.istructure import DeferredReader

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.node.node import Node

Handler = Callable[["Node", Message], None]


def handle_send(node: "Node", message: Message) -> None:
    """Type 0: invoke the inlet named by the message's IP word.

    The behavioural model keeps inlets as registered Python callables
    keyed by the IP value (the assembly model jumps to the IP; here the
    registry plays the role of the code memory).
    """
    ip = message.word(1)
    inlet = node.inlets.get(ip)
    if inlet is None:
        raise MessageFormatError(
            f"node {node.node_id}: no inlet registered at IP {ip:#x}"
        )
    inlet(node, message)


def handle_read(node: "Node", message: Message) -> None:
    """Remote read request: reply with the addressed word (Section 2.1.4)."""
    address = message.m0_low
    value = node.memory.load(address)
    ni = node.interface
    ni.write_output(2, value)
    # REPLY mode pulls the reply FP and IP from i1/i2 in hardware.
    node.send_with_retry(P.TYPE_SEND, SendMode.REPLY)


def handle_write(node: "Node", message: Message) -> None:
    """Remote write: bank the value, no reply."""
    node.memory.store(message.m0_low, message.word(1))


def handle_pread(node: "Node", message: Message) -> None:
    """Presence-bit read: reply when full, otherwise defer the reader."""
    descriptor = message.m0_low
    index = message.word(3)
    reader = DeferredReader(
        frame_pointer=message.word(1), instruction_pointer=message.word(2)
    )
    state, value = node.istructures.read(descriptor, index, reader)
    if state == "full":
        node.interface.write_output(2, value)
        node.send_with_retry(P.TYPE_SEND, SendMode.REPLY)


def handle_pwrite(node: "Node", message: Message) -> None:
    """Presence-bit write: bank the value, forward it to deferred readers."""
    descriptor = message.m0_low
    index = message.word(1)
    value = message.word(2)
    _, satisfied = node.istructures.write(descriptor, index, value)
    ni = node.interface
    for reader in satisfied:
        destination, _ = unpack_destination(reader.frame_pointer)
        ni.write_output(0, reader.frame_pointer)
        ni.write_output(1, reader.instruction_pointer)
        # FORWARD mode carries the value from i2 into word 2 in hardware.
        node.send_with_retry(P.TYPE_SEND, SendMode.FORWARD)
        del destination  # routing is the fabric's concern


def handle_escape(node: "Node", message: Message) -> None:
    """The escape type of Section 2.2.1.

    Systems with more message kinds than fit in four bits set one type
    aside as an *escape*: such messages identify their real handler with a
    full 32-bit id in word 4.  The node keeps a secondary dispatch table
    for these rare kinds.
    """
    escape_id = message.word(4)
    handler = node.escape_handlers.get(escape_id)
    if handler is None:
        raise MessageFormatError(
            f"node {node.node_id}: no escape handler for id {escape_id:#x}"
        )
    handler(node, message)


ESCAPE_TYPE = 15
"""The type value the default protocol sets aside for escapes."""


DEFAULT_HANDLERS: Dict[int, Handler] = {
    P.TYPE_SEND: handle_send,
    P.TYPE_READ: handle_read,
    P.TYPE_WRITE: handle_write,
    P.TYPE_PREAD: handle_pread,
    P.TYPE_PWRITE: handle_pwrite,
    ESCAPE_TYPE: handle_escape,
}


def build_read_request(
    destination: int, address: int, reply_fp: int, reply_ip: int
) -> Message:
    """Compose a Read request message per the protocol conventions."""
    return Message(
        P.TYPE_READ,
        (
            pack_destination(destination, address),
            reply_fp,
            reply_ip,
            0,
            0,
        ),
    )


def build_write_request(destination: int, address: int, value: int) -> Message:
    return Message(
        P.TYPE_WRITE,
        (pack_destination(destination, address), value, 0, 0, 0),
    )


def build_pread_request(
    destination: int, descriptor: int, index: int, reply_fp: int, reply_ip: int
) -> Message:
    return Message(
        P.TYPE_PREAD,
        (
            pack_destination(destination, descriptor),
            reply_fp,
            reply_ip,
            index,
            0,
        ),
    )


def build_pwrite_request(
    destination: int, descriptor: int, index: int, value: int
) -> Message:
    return Message(
        P.TYPE_PWRITE,
        (pack_destination(destination, descriptor), index, value, 0, 0),
    )


def build_send(destination: int, fp_low: int, ip: int, data=()) -> Message:
    """Compose a type-0 Send invoking the inlet at ``ip`` on ``destination``."""
    data = tuple(data)
    if len(data) > 2:
        raise MessageFormatError("a Send carries at most two data words")
    words = [pack_destination(destination, fp_low), ip]
    words.extend(data)
    words.extend([0] * (5 - len(words)))
    return Message(P.TYPE_SEND, tuple(words))
