"""The deterministic cycle engine.

One :class:`SimKernel` drives any number of registered components
through lockstep cycles.  The rules are few and strict, which is what
makes runs reproducible bit for bit:

* **Ordering** — within a cycle, components tick in registration order,
  always.  A workload that needs "senders before the fabric" registers
  them in that order and never thinks about it again.
* **Cycles** — every executed service round is exactly one cycle; there
  is no domain whose rounds are "free".  The cycle counter is the one
  clock every component sees.
* **Wake/sleep** — a component may remove itself from the per-cycle
  scan (``sleep``), re-enter it (``wake``), or schedule a timed re-entry
  (``wake_at``).  The awake scan uses the flag-array trick from the TAM
  fast path: a plain bool list with a ``True`` sentinel at the end, so
  skipping sleepers is a C-level ``list.index`` scan, not a Python loop.
  Timed wakes live in a min-heap of ``(cycle, index)`` events (lazily
  invalidated against the authoritative index->cycle dict), so promoting
  due wakes costs ``O(due log pending)`` instead of a scan of every
  pending wake per cycle — and when *nothing* is awake and no hook or
  custom predicate observes individual cycles, the kernel fast-forwards
  straight to the next timed wake instead of spinning through idle
  cycles.  Cycle counts, stop conditions, and stall diagnostics are
  unchanged by the skip; ``SimKernel(fast_forward=False)`` restores the
  literal cycle-by-cycle loop.
* **Stop conditions** — a run ends when every component reports
  :meth:`~repro.sim.component.SimComponent.quiescent` (the default), or
  when a caller-supplied predicate fires; if neither happens within
  ``max_cycles`` the kernel raises with a diagnostic snapshot of every
  component's state, so a timeout is debuggable instead of a bare
  "did not finish".
* **Hooks** — ``add_cycle_hook`` registers a callable invoked after
  every cycle with the cycle number; this is where obs metrics sampling
  or tracing cadence attaches without the workload loop knowing.
* **Profiling** — ``attach_profiler`` installs a
  :class:`~repro.obs.profiler.SimProfiler` that attributes serviced
  ticks and wall-clock time per component.  The attachment is
  identity-guarded like the tracer: with no profiler the kernel runs the
  original loop unchanged (byte-identical behaviour, zero overhead) and
  never writes a profiling attribute onto any component; with one, the
  kernel switches to a separate instrumented loop with the same
  execution semantics.

Stop conditions are evaluated *before* each cycle, so a machine that is
already quiescent runs zero cycles, and the returned cycle count is
exactly the number of service rounds executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import SimStallError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs uses sim types)
    from repro.obs.profiler import SimProfiler


@dataclass
class SimResult:
    """What one :meth:`SimKernel.run` call observed."""

    cycles: int
    """Service rounds executed by this run."""
    reason: str
    """Why the run stopped: ``"quiescent"`` or ``"predicate"``."""


class SimHandle:
    """A component's scheduling handle, returned by ``register``.

    The handle is how a component (or the code that built it) controls
    its own idle-skipping; the kernel never sleeps a component on its
    own.
    """

    __slots__ = ("_kernel", "index", "component", "name")

    def __init__(self, kernel: "SimKernel", index: int, component, name: str):
        self._kernel = kernel
        self.index = index
        self.component = component
        self.name = name

    @property
    def awake(self) -> bool:
        return self._kernel._awake[self.index]

    def wake(self) -> None:
        """Re-enter the per-cycle scan immediately.

        Waking a component the current cycle's scan has not yet passed
        makes it tick this very cycle; waking one the scan already
        passed takes effect next cycle.
        """
        self._kernel._timed.pop(self.index, None)
        self._kernel._awake[self.index] = True

    def wake_at(self, cycle: int) -> None:
        """Sleep until the kernel reaches ``cycle`` (inclusive)."""
        kernel = self._kernel
        kernel._awake[self.index] = False
        kernel._timed[self.index] = cycle
        heappush(kernel._timed_heap, (cycle, self.index))

    def sleep(self) -> None:
        """Leave the per-cycle scan until explicitly woken."""
        self._kernel._timed.pop(self.index, None)
        self._kernel._awake[self.index] = False


class SimKernel:
    """Deterministic cycle/quiescence engine for registered components."""

    def __init__(self, fast_forward: bool = True) -> None:
        self.cycle = 0
        self._components: List[object] = []
        self._handles: List[SimHandle] = []
        # Awake flags, one per component, plus the sentinel True that
        # terminates the list.index scan (see tam/fastpath's scheduler,
        # which this generalizes).
        self._awake: List[bool] = [True]
        # Timed wakes live twice: ``_timed`` maps index -> wake cycle and
        # is authoritative (wake/sleep rewrite it freely); ``_timed_heap``
        # holds (cycle, index) events and may contain stale entries,
        # invalidated lazily against the dict when popped.
        self._timed: Dict[int, int] = {}
        self._timed_heap: List[Tuple[int, int]] = []
        self._fast_forward = fast_forward
        self._hooks: List[Callable[[int], None]] = []
        self._profiler: Optional["SimProfiler"] = None
        self._running = False

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def register(self, component, name: Optional[str] = None) -> SimHandle:
        """Add ``component`` to the machine; service order is registration
        order.  Returns the component's scheduling handle."""
        if self._running:
            raise SimulationError("cannot register components mid-run")
        index = len(self._components)
        handle = SimHandle(
            self, index, component, name or getattr(component, "name", "component")
        )
        self._components.append(component)
        self._handles.append(handle)
        # Keep the sentinel at the end of the flag array.
        self._awake[index] = True
        self._awake.append(True)
        return handle

    def add_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Run ``hook(cycle)`` after every executed cycle."""
        self._hooks.append(hook)

    def attach_profiler(self, profiler: Optional["SimProfiler"]) -> None:
        """Install (or with ``None`` remove) the kernel's profiler.

        Attribution rows are bound to components by registration index
        at run start, so attaching before or after registration both
        work; attaching mid-run does not.
        """
        if self._running:
            raise SimulationError("cannot attach a profiler mid-run")
        self._profiler = profiler

    @property
    def profiler(self) -> Optional["SimProfiler"]:
        return self._profiler

    @property
    def handles(self) -> List[SimHandle]:
        return list(self._handles)

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def quiescent(self) -> bool:
        """True when every registered component is quiescent."""
        return all(c.quiescent() for c in self._components)

    def run(
        self,
        max_cycles: int = 100_000,
        until: Optional[Callable[[], bool]] = None,
        stall_error: Callable[[str], BaseException] = SimStallError,
        label: str = "simulation",
    ) -> SimResult:
        """Execute cycles until the stop condition holds.

        ``until`` replaces the default all-quiescent stop condition with
        a custom predicate.  ``max_cycles`` bounds *this* run (the
        kernel's cycle counter accumulates across runs); on exceeding it
        the kernel raises ``stall_error`` — any exception type taking a
        message string — with the diagnostic snapshot of every
        component.
        """
        if self._running:
            raise SimulationError("kernel run re-entered")
        components = self._components
        if not components:
            raise SimulationError("kernel has no registered components")
        awake = self._awake
        timed = self._timed
        hooks = self._hooks
        n = len(components)
        start = self.cycle
        self._running = True
        try:
            if self._profiler is not None:
                return self._run_profiled(max_cycles, until, stall_error, label)
            theap = self._timed_heap
            # Idle cycles can only be fast-forwarded when nothing outside
            # the kernel observes individual cycles: no custom stop
            # predicate and no cycle hooks.  The jump lands exactly where
            # the per-cycle loop would have woken someone (or at the
            # cycle bound, so stall diagnostics are unchanged).
            skip_idle = self._fast_forward and until is None and not hooks
            while True:
                if until is not None:
                    if until():
                        return SimResult(self.cycle - start, "predicate")
                elif all(c.quiescent() for c in components):
                    return SimResult(self.cycle - start, "quiescent")
                if self.cycle - start >= max_cycles:
                    raise stall_error(self._stall_report(label, max_cycles))
                self.cycle = cycle = self.cycle + 1
                while theap and theap[0][0] <= cycle:
                    at, i = heappop(theap)
                    if timed.get(i) == at:
                        del timed[i]
                        awake[i] = True
                i = awake.index(True)
                if i == n and skip_idle:
                    # Nothing ticks this cycle; drop stale heap entries,
                    # then jump to just before the next timed wake (or to
                    # the bound when no wake is pending).
                    while theap and timed.get(theap[0][1]) != theap[0][0]:
                        heappop(theap)
                    if theap:
                        self.cycle = min(theap[0][0] - 1, start + max_cycles)
                    else:
                        self.cycle = start + max_cycles
                    continue
                while i != n:
                    components[i].tick(cycle)
                    i = awake.index(True, i + 1)
                for hook in hooks:
                    hook(cycle)
        finally:
            self._running = False

    def _run_profiled(
        self,
        max_cycles: int,
        until: Optional[Callable[[], bool]],
        stall_error: Callable[[str], BaseException],
        label: str,
    ) -> SimResult:
        """The instrumented twin of the :meth:`run` loop.

        Execution semantics are identical — same stop conditions, same
        timed-wake promotion, same scan order — with per-tick timing and
        attribution added.  The determinism test pins the two loops to
        byte-identical simulation results.
        """
        profiler = self._profiler
        components = self._components
        awake = self._awake
        timed = self._timed
        theap = self._timed_heap
        hooks = self._hooks
        n = len(components)
        start = self.cycle
        profiles = profiler.bind_components([h.name for h in self._handles])
        interval = profiler.sample_interval
        next_sample = start + interval
        profiler.runs += 1
        try:
            while True:
                if until is not None:
                    if until():
                        return SimResult(self.cycle - start, "predicate")
                elif all(c.quiescent() for c in components):
                    return SimResult(self.cycle - start, "quiescent")
                if self.cycle - start >= max_cycles:
                    raise stall_error(self._stall_report(label, max_cycles))
                self.cycle = cycle = self.cycle + 1
                while theap and theap[0][0] <= cycle:
                    at, i = heappop(theap)
                    if timed.get(i) == at:
                        del timed[i]
                        awake[i] = True
                        profiles[i].timed_wakes += 1
                i = awake.index(True)
                while i != n:
                    t0 = perf_counter()
                    components[i].tick(cycle)
                    elapsed = perf_counter() - t0
                    profile = profiles[i]
                    profile.ticks += 1
                    profile.seconds += elapsed
                    i = awake.index(True, i + 1)
                for hook in hooks:
                    hook(cycle)
                if interval and cycle >= next_sample:
                    profiler.sample_now(cycle)
                    next_sample = cycle + interval
        finally:
            profiler.cycles += self.cycle - start
            if interval:
                profiler.sample_now(self.cycle)

    # ------------------------------------------------------------------
    # Diagnostics.
    # ------------------------------------------------------------------

    def _stall_report(self, label: str, max_cycles: int) -> str:
        """The timeout message: what every component looked like."""
        lines = [
            f"{label} did not reach its stop condition within "
            f"{max_cycles} cycles (kernel cycle {self.cycle})",
            "state at stall:",
        ]
        for handle in self._handles:
            state = handle.component.snapshot()
            detail = " ".join(f"{key}={value}" for key, value in state.items())
            status = "awake" if self._awake[handle.index] else (
                f"wake@{self._timed[handle.index]}"
                if handle.index in self._timed
                else "asleep"
            )
            lines.append(f"  - {handle.name} [{status}] {detail}".rstrip())
        return "\n".join(lines)
