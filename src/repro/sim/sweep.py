"""Turn-based service policies: the kernel's TAM schedulers.

The TAM runtime's unit of time is the *productive turn* (one thread run
or one message processed), not the cycle, so it schedules on the
policies here rather than on :class:`~repro.sim.kernel.SimKernel`'s
cycle loop.  All implement the same contract:

* states are serviced in ascending index order, sweep after sweep;
* each state performs at most one unit of work per sweep;
* a run ends when a full sweep finds no work anywhere;
* ``max_turns`` bounds productive turns exactly: a run needing exactly
  ``max_turns`` turns succeeds, one needing more raises ``stall()``
  before executing the excess turn.  (The legacy loops charged the
  bound *after* executing a turn, silently permitting ``max_turns + 1``
  productive turns.)

:class:`ReferenceSweep` scans every state every sweep — the executable
specification.  :class:`ActiveSweep` reproduces the identical service
order with per-state activity flags so idle states cost nothing: the
flag arrays carry a ``True`` sentinel at index ``n`` so the sweep scan
(``list.index``) always terminates without an exception, and a state
activated mid-sweep joins the current sweep if the sweep has not yet
passed it (the reference policy would still reach it) and the next
sweep otherwise.  :class:`EventSweep` replaces the flag arrays with a
min-heap of integer wake events for the codegen machine, again with the
identical service order.  The golden-equivalence tests pin all policies
turn-for-turn.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Iterable, List, Optional, Sequence


class ReferenceSweep:
    """Scan-all-states scheduler: the executable specification."""

    def run(
        self,
        states: Sequence,
        has_work: Callable[[object], object],
        do_one: Callable[[object], None],
        max_turns: int,
        stall: Callable[[], BaseException],
    ) -> int:
        """Service ``states`` to quiescence; returns productive turns.

        ``has_work(state)`` is truthy while the state can perform a unit
        of work; ``do_one(state)`` performs exactly one.
        """
        turns = 0
        while True:
            progressed = False
            for state in states:
                if not has_work(state):
                    continue
                if turns >= max_turns:
                    raise stall()
                do_one(state)
                progressed = True
                turns += 1
            if not progressed:
                return turns


class ActiveSweep:
    """Flag-array scheduler: same service order, no idle scans.

    One instance lives per machine: ``in_current`` / ``in_next`` /
    ``sweep_pos`` are public on purpose — the machine's message-post
    path pokes them directly (the hottest operation in a TAM run), and
    that attribute contract is part of the policy's API.  ``active`` is
    True only while a run is in progress, which posting code uses as
    the signal that activity flags need maintaining at all.
    """

    __slots__ = ("n", "in_current", "in_next", "sweep_pos", "active")

    def __init__(self, n: int) -> None:
        self.n = n
        # Sentinel True at index n terminates the list.index scans.
        self.in_current: List[bool] = [False] * n + [True]
        self.in_next: List[bool] = [False] * n + [True]
        self.sweep_pos = -1
        self.active = False

    def wake(self, index: int) -> None:
        """Flag ``index`` for service; mid-sweep wakes join the current
        sweep only if the sweep has not passed them yet."""
        if index > self.sweep_pos:
            self.in_current[index] = True
        else:
            self.in_next[index] = True

    def run(
        self,
        states: Sequence,
        service: Callable[[object], Optional[bool]],
        initially_active: Iterable[int],
        max_turns: int,
        stall: Callable[[], BaseException],
    ) -> int:
        """Service flagged states to quiescence; returns productive turns.

        ``service(state)`` performs at most one unit of work and returns
        ``None`` if the state had none, else whether the state still has
        work (which re-arms its flag for the next sweep).  New work
        created on *other* states must be reported through :meth:`wake`
        (or direct flag stores) while :attr:`active` is set.
        """
        n = self.n
        in_current = self.in_current
        in_next = self.in_next
        for index in initially_active:
            in_current[index] = True
        self.sweep_pos = -1
        self.active = True
        turns = 0
        try:
            while True:
                i = in_current.index(True)
                while i != n:
                    in_current[i] = False
                    self.sweep_pos = i
                    more = service(states[i])
                    if more is None:  # pragma: no cover - flagged states have work
                        i = in_current.index(True, i + 1)
                        continue
                    turns += 1
                    if turns >= max_turns and (
                        more
                        or in_current.index(True, i + 1) != n
                        or in_next.index(True) != n
                    ):
                        # The bound is reached and work remains: a
                        # further productive turn would be needed.
                        raise stall()
                    if more:
                        in_next[i] = True
                    i = in_current.index(True, i + 1)
                self.sweep_pos = -1
                if in_next.index(True) == n:
                    return turns
                # Promote: the next sweep's flags become the current
                # sweep's (the old current array is all-False again).
                in_current, in_next = in_next, in_current
                self.in_current = in_current
                self.in_next = in_next
        finally:
            self.active = False
            self.sweep_pos = -1
            for i in range(n):
                in_current[i] = False
                in_next[i] = False


class EventSweep:
    """Heap scheduler: same service order as :class:`ActiveSweep`, but
    pending work lives in a min-heap of wake events instead of flag
    arrays, so a sweep over ``n`` states with ``k`` active ones costs
    ``O(k log k)`` instead of the ``O(n)`` flag scan.

    Each pending wake is a single integer key ``sweep * n + index``, so
    the heap orders by sweep first and index second without allocating
    tuples.  ``queued[index]`` holds the key currently in the heap for
    that state (or ``-1``), which keeps each state at most once in the
    heap — the analogue of a flag array where setting a set flag is a
    no-op.  A state woken mid-sweep targets the current sweep if the
    sweep has not passed it yet (``index > sweep_pos``) and the next
    sweep otherwise, exactly :meth:`ActiveSweep.wake`'s rule; since a
    state's flag under ActiveSweep is set in at most one of the two
    arrays at any instant, the single ``queued`` slot loses nothing.

    The same public attribute contract applies: the machine's post path
    calls :meth:`wake` (or inlines it) only while :attr:`active` is set.
    """

    __slots__ = ("n", "heap", "queued", "sweep", "sweep_pos", "active")

    def __init__(self, n: int) -> None:
        self.n = n
        self.heap: List[int] = []
        self.queued: List[int] = [-1] * n
        self.sweep = 0
        self.sweep_pos = -1
        self.active = False

    def wake(self, index: int) -> None:
        """Queue ``index`` for service; mid-sweep wakes join the current
        sweep only if the sweep has not passed them yet."""
        if self.queued[index] == -1:
            target = self.sweep if index > self.sweep_pos else self.sweep + 1
            key = target * self.n + index
            self.queued[index] = key
            heappush(self.heap, key)

    def run(
        self,
        states: Sequence,
        service: Callable[[object], Optional[bool]],
        initially_active: Iterable[int],
        max_turns: int,
        stall: Callable[[], BaseException],
    ) -> int:
        """Service queued states to quiescence; returns productive turns.

        Same contract as :meth:`ActiveSweep.run`: ``service(state)``
        performs at most one unit of work and returns ``None`` if the
        state had none, else whether it still has work (re-queueing it
        for the next sweep).  Work created on *other* states must be
        reported through :meth:`wake` while :attr:`active` is set.
        """
        n = self.n
        heap = self.heap
        queued = self.queued
        # Sweep-0 keys equal the indices, so a sorted unique seed list is
        # already a valid heap.
        for index in sorted(set(initially_active)):
            queued[index] = index
            heap.append(index)
        self.sweep = 0
        self.sweep_pos = -1
        self.active = True
        turns = 0
        try:
            while heap:
                key = heappop(heap)
                sweep, index = divmod(key, n)
                if sweep != self.sweep:
                    # First event of the next sweep: promote.
                    self.sweep = sweep
                self.sweep_pos = index
                queued[index] = -1
                more = service(states[index])
                if more is None:  # pragma: no cover - queued states have work
                    continue
                turns += 1
                if turns >= max_turns and (more or heap):
                    # The bound is reached and work remains: a further
                    # productive turn would be needed.
                    raise stall()
                if more and queued[index] == -1:
                    # Re-arm for the next sweep (unless servicing already
                    # re-queued this state by posting to itself).
                    rearm = (sweep + 1) * n + index
                    queued[index] = rearm
                    heappush(heap, rearm)
            return turns
        finally:
            self.active = False
            self.sweep = 0
            self.sweep_pos = -1
            for index in range(n):
                queued[index] = -1
            del heap[:]
