"""The contract a clocked object implements to run under the kernel.

A component is anything with per-cycle behaviour: a fabric, a NIC link,
a synthetic traffic source, a processor's service loop.  The kernel only
ever calls the three methods below, always in the component's
registration order, so a component never needs to know what else is in
the machine.

Components are duck-typed — subclassing :class:`SimComponent` is
convenient (it supplies the defaults) but not required; any object with
``tick``/``quiescent``/``snapshot`` and a ``name`` can be registered.

Profiling never leaks into this contract: when a
:class:`~repro.obs.profiler.SimProfiler` is attached the kernel keeps
every attribution row on its own side (indexed by registration order),
so a component is never written to, subclassed, or wrapped to be
profiled — the zero-cost-off tests assert a component's attribute set is
identical across profiled and unprofiled runs.
"""

from __future__ import annotations

from typing import Dict


class SimComponent:
    """Base class for kernel-driven components.

    Subclasses override :meth:`tick`; most also override
    :meth:`quiescent` (the default claims the component never holds the
    machine open) and :meth:`snapshot` (the default contributes nothing
    to stall diagnostics).
    """

    #: Display name used in diagnostics; instances may shadow this.
    name: str = "component"

    def tick(self, cycle: int) -> None:
        """Advance one cycle.  ``cycle`` is the kernel's cycle number.

        A component that wants to be idle-skipped calls ``sleep()`` /
        ``wake_at()`` on the :class:`~repro.sim.kernel.SimHandle` it
        received at registration; the kernel never ticks a sleeping
        component.
        """
        raise NotImplementedError

    def quiescent(self) -> bool:
        """True when this component holds no pending work.

        The kernel's default stop condition fires when *every*
        registered component is quiescent — including sleeping ones, so
        a component that sleeps between timed wakes must still report
        non-quiescent while it has work outstanding.
        """
        return True

    def snapshot(self) -> Dict[str, object]:
        """Diagnostic state included in the kernel's stall report."""
        return {}
