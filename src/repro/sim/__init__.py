"""One deterministic simulation kernel for every clocked domain.

The repro interleaves three clocked domains — processor kernels, the
NI's queues/RTL, and the routing fabric — and before this package each
driver hand-rolled its own quiescence loop.  :mod:`repro.sim` is the
single engine they all run on now:

* :class:`~repro.sim.kernel.SimKernel` — the cycle engine: component
  registration with stable service ordering, wake/sleep idle-skip
  scheduling (the flag-array trick from the TAM fast path, generalized),
  unified stop conditions (quiescence, max-cycles with a diagnostic
  state snapshot, custom predicates), and cycle hooks for the
  observability layer.
* :class:`~repro.sim.component.SimComponent` — the component contract a
  clocked object implements to be driven by the kernel.
* :mod:`repro.sim.sweep` — the turn-based service policies
  (:class:`~repro.sim.sweep.ReferenceSweep`,
  :class:`~repro.sim.sweep.ActiveSweep`, and the heap-based
  :class:`~repro.sim.sweep.EventSweep`) the TAM runtime schedules on,
  pinned turn-for-turn equivalent to each other.

Drivers rebased on this package: ``api.cluster.Cluster.run``, the
flow-control hot-spot experiment, ``network.fabric.Fabric
.run_until_quiescent``, ``nic.link.Link.run_until_idle``, and both TAM
schedulers in ``tam.runtime``.
"""

from repro.sim.component import SimComponent
from repro.sim.kernel import SimHandle, SimKernel, SimResult
from repro.sim.sweep import ActiveSweep, EventSweep, ReferenceSweep

__all__ = [
    "ActiveSweep",
    "EventSweep",
    "ReferenceSweep",
    "SimComponent",
    "SimHandle",
    "SimKernel",
    "SimResult",
]
