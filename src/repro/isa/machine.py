"""Behavioural executor and cycle counter for handler sequences.

The :class:`Machine` runs an instruction :class:`~repro.isa.instructions.
Sequence` against a real :class:`~repro.nic.interface.NetworkInterface` and
:class:`~repro.node.memory.Memory`, so every Table 1 kernel is *executed* —
the reply really is composed and queued, the I-structure word really is
written — while a scoreboard applies the cost rules of
:mod:`repro.isa.costs` to produce the cycle count.

The machine is configured with a *placement* (paper Section 3):

* ``OFF_CHIP`` / ``ON_CHIP`` — interface registers are reached through
  :class:`~repro.nic.mmio.MemoryMappedInterface` loads and stores (with
  riders in the address bits); using an interface register as an ALU
  operand is rejected.
* ``REGISTER`` — interface registers are general registers; any instruction
  may name them and any triadic instruction may carry riders; NILOAD /
  NISTORE are rejected because there is nothing to memory-map.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import MachineError
from repro.isa.costs import (
    OFF_CHIP_COSTS,
    ON_CHIP_COSTS,
    REGISTER_COSTS,
    CostModel,
)
from repro.isa.instructions import (
    AluFn,
    Cond,
    Instruction,
    Opcode,
    Sequence,
)
from repro.isa.registers import RegisterFile, is_ni_register, resolve
from repro.nic.interface import NetworkInterface, SendResult
from repro.nic.mmio import MemoryMappedInterface, encode_address
from repro.node.memory import Memory
from repro.utils.bitfield import to_word


class Placement(enum.Enum):
    """Where the interface sits (paper Section 3)."""

    OFF_CHIP = "off-chip"
    ON_CHIP = "on-chip"
    REGISTER = "register"


DEFAULT_COSTS = {
    Placement.OFF_CHIP: OFF_CHIP_COSTS,
    Placement.ON_CHIP: ON_CHIP_COSTS,
    Placement.REGISTER: REGISTER_COSTS,
}


@dataclass
class RunResult:
    """The outcome of running one sequence."""

    cycles: int = 0
    instructions: int = 0
    stall_cycles: int = 0
    delay_slot_cycles: int = 0
    halted: bool = False
    jump_target: Optional[int] = None
    send_results: List[SendResult] = field(default_factory=list)
    trace: List[str] = field(default_factory=list)
    ready_at: Dict[str, int] = field(default_factory=dict)

    def tail_stall(self, register: str) -> int:
        """Cycles a follow-on consumer of ``register`` would still stall.

        Used by the Table 1 harness for handlers whose last instruction is
        an interface load the invoked thread consumes immediately (e.g. a
        Send handler loading the frame pointer): the paper charges those
        dead cycles to message processing.
        """
        ready = self.ready_at.get(register, 0)
        return max(0, ready - (self.cycles + 1))


class Machine:
    """An 88100-flavoured processor coupled to one network interface."""

    def __init__(
        self,
        placement: Placement,
        interface: Optional[NetworkInterface] = None,
        memory: Optional[Memory] = None,
        cost_model: Optional[CostModel] = None,
        trace: bool = False,
    ) -> None:
        self.placement = placement
        self.interface = interface or NetworkInterface()
        self.memory = memory or Memory()
        self.costs = cost_model or DEFAULT_COSTS[placement]
        self.registers = RegisterFile()
        self.trace_enabled = trace
        self._mmio = (
            MemoryMappedInterface(self.interface)
            if placement is not Placement.REGISTER
            else None
        )

    # ------------------------------------------------------------------
    # Register access, placement-aware.
    # ------------------------------------------------------------------

    def read_reg(self, name: str) -> int:
        if is_ni_register(name):
            if self.placement is not Placement.REGISTER:
                raise MachineError(
                    f"{name} is not a general register under the "
                    f"{self.placement.value} placement; use NILOAD"
                )
            return self._read_ni(name)
        return self.registers.read(name)

    def write_reg(self, name: str, value: int) -> None:
        if is_ni_register(name):
            if self.placement is not Placement.REGISTER:
                raise MachineError(
                    f"{name} is not a general register under the "
                    f"{self.placement.value} placement; use NISTORE"
                )
            self._write_ni(name, value)
            return
        self.registers.write(name, value)

    def _read_ni(self, name: str) -> int:
        ni = self.interface
        if name.startswith("i"):
            return ni.read_input(int(name[1]))
        if name.startswith("o"):
            return ni.read_output(int(name[1]))
        if name == "STATUS":
            return ni.status.word
        if name == "CONTROL":
            return ni.control.word
        if name == "MsgIp":
            return ni.msg_ip
        if name == "NextMsgIp":
            return ni.next_msg_ip
        if name == "IpBase":
            return ni.ip_base
        raise MachineError(f"unreadable interface register {name}")

    def _write_ni(self, name: str, value: int) -> None:
        ni = self.interface
        if name.startswith("o"):
            ni.write_output(int(name[1]), value)
        elif name == "CONTROL":
            ni.control.word = value
        elif name == "IpBase":
            ni.ip_base = value
        elif name == "STATUS":
            if value == 0:
                ni.status.clear_exceptions()
        else:
            raise MachineError(f"interface register {name} is read-only")

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(
        self,
        sequence: Sequence,
        max_steps: int = 100_000,
        resolve_jump: Optional[Callable[[int], Optional[int]]] = None,
    ) -> RunResult:
        """Execute ``sequence`` from its first instruction.

        ``resolve_jump`` optionally maps a register-indirect jump target
        address to an instruction index inside the sequence; unresolved
        jumps terminate the run with :attr:`RunResult.jump_target` set,
        which is how the Table 1 harness separates DISPATCHING from
        PROCESSING exactly as the paper does.
        """
        labels = self._label_map(sequence)
        result = RunResult()
        ready_at: Dict[str, int] = {}
        pc = 0
        steps = 0
        instructions = sequence.instructions
        while 0 <= pc < len(instructions):
            steps += 1
            if steps > max_steps:
                raise MachineError(
                    f"sequence {sequence.name!r} exceeded {max_steps} steps"
                )
            instr = instructions[pc]
            pc = self._step(instr, pc, labels, ready_at, result, resolve_jump)
            if result.halted or result.jump_target is not None:
                break
        result.ready_at = dict(ready_at)
        return result

    def _label_map(self, sequence: Sequence) -> Dict[str, int]:
        # Delegates to the per-sequence cache: re-running a handler
        # sequence (the Table 1 harness does this per message) no longer
        # rebuilds the map.
        try:
            return sequence.label_map()
        except ValueError as exc:
            raise MachineError(str(exc)) from None

    def _step(
        self,
        instr: Instruction,
        pc: int,
        labels: Dict[str, int],
        ready_at: Dict[str, int],
        result: RunResult,
        resolve_jump: Optional[Callable[[int], Optional[int]]],
    ) -> int:
        self._validate(instr)
        if instr.opcode is Opcode.HALT:
            # A sequence-end marker for the harness, not a machine
            # instruction: costs nothing.
            result.halted = True
            return pc + 1
        # --- timing: issue when all consumed values are ready -----------
        issue = result.cycles + 1
        for src in instr.source_registers():
            canonical = resolve(src) if not is_ni_register(src) else src
            issue = max(issue, ready_at.get(canonical, 0))
        stall = issue - (result.cycles + 1)
        result.stall_cycles += stall
        result.cycles = issue
        result.instructions += 1
        penalty = self.costs.control_penalty(instr)
        result.cycles += penalty
        result.delay_slot_cycles += penalty
        if self.trace_enabled:
            result.trace.append(
                f"{result.cycles:4d}  {instr.render().strip()}"
                + (f"  [stall {stall}]" if stall else "")
            )
        # --- semantics ---------------------------------------------------
        next_pc = pc + 1
        op = instr.opcode
        if op is Opcode.ALU:
            value = _alu(instr.fn, self.read_reg(instr.rs1), self.read_reg(instr.rs2))
            self.write_reg(instr.rd, value)
            self._mark_ready(instr, issue, ready_at)
        elif op is Opcode.ALUI:
            value = _alu(instr.fn, self.read_reg(instr.rs1), to_word(instr.imm))
            self.write_reg(instr.rd, value)
            self._mark_ready(instr, issue, ready_at)
        elif op is Opcode.LOADIMM:
            self.write_reg(instr.rd, to_word(instr.imm))
            self._mark_ready(instr, issue, ready_at)
        elif op is Opcode.LOAD:
            address = self._local(self.read_reg(instr.rs1) + instr.imm)
            self.write_reg(instr.rd, self.memory.load(address))
            self._mark_ready(instr, issue, ready_at)
        elif op is Opcode.STORE:
            address = self._local(self.read_reg(instr.rs1) + instr.imm)
            self.memory.store(address, self.read_reg(instr.rs2))
        elif op is Opcode.NILOAD:
            self.write_reg(instr.rd, self._ni_access(instr, None, result))
            self._mark_ready(instr, issue, ready_at)
        elif op is Opcode.NISTORE:
            self._ni_access(instr, self.read_reg(instr.rs2), result)
        elif op is Opcode.NICMD:
            self._ni_access(instr, 0, result, bare=True)
        elif op is Opcode.JUMPREG:
            target = self.read_reg(instr.rs1)
            resolved = resolve_jump(target) if resolve_jump else None
            if resolved is None:
                result.jump_target = target
            else:
                next_pc = resolved
        elif op is Opcode.BRANCH:
            next_pc = self._label_target(instr, labels)
        elif op is Opcode.BRANCHBIT:
            bit = (self.read_reg(instr.rs1) >> instr.bit) & 1
            if bool(bit) == instr.branch_on_set:
                next_pc = self._label_target(instr, labels)
        elif op is Opcode.BRANCHCOND:
            if _compare(instr.cond, self.read_reg(instr.rs1), instr.imm):
                next_pc = self._label_target(instr, labels)
        elif op is Opcode.NOP:
            pass
        else:  # pragma: no cover - exhaustive over Opcode
            raise MachineError(f"unimplemented opcode {op}")
        # --- riders (register placement; mm riders run inside _ni_access)
        if instr.riders.any and (
            self.placement is Placement.REGISTER
            or op not in (Opcode.NILOAD, Opcode.NISTORE, Opcode.NICMD)
        ):
            self._run_riders(instr, result)
        return next_pc

    @staticmethod
    def _local(address: int) -> int:
        """Strip the logical-node bits from a global address.

        Handler conventions put the destination node in the high bits of
        addresses carried by messages (Figure 2); once a message reaches its
        node, the local memory system ignores those upper address lines, so
        software never spends instructions masking them.
        """
        from repro.nic.messages import DEST_MASK

        return to_word(address) & ~DEST_MASK & 0xFFFF_FFFF

    def _mark_ready(self, instr: Instruction, issue: int, ready_at: Dict[str, int]) -> None:
        if instr.rd is None:
            return
        canonical = instr.rd if is_ni_register(instr.rd) else resolve(instr.rd)
        ready_at[canonical] = issue + self.costs.load_ready_delay(instr)

    def _label_target(self, instr: Instruction, labels: Dict[str, int]) -> int:
        try:
            return labels[instr.target]
        except KeyError:
            raise MachineError(f"undefined label {instr.target!r}") from None

    def _validate(self, instr: Instruction) -> None:
        if self.placement is Placement.REGISTER:
            if instr.opcode in (Opcode.NILOAD, Opcode.NISTORE, Opcode.NICMD):
                raise MachineError(
                    "NILOAD/NISTORE/NICMD are memory-mapped accesses; the "
                    "register placement names interface registers directly"
                )
        else:
            for name in (instr.rd, instr.rs1, instr.rs2):
                if name is not None and is_ni_register(name):
                    raise MachineError(
                        f"instruction names interface register {name} as an "
                        f"operand under the {self.placement.value} placement"
                    )
            if instr.riders.any and instr.opcode not in (
                Opcode.NILOAD,
                Opcode.NISTORE,
                Opcode.NICMD,
            ):
                raise MachineError(
                    "under memory-mapped placements riders can only travel "
                    "in interface address bits (Figure 9)"
                )

    def _ni_access(
        self,
        instr: Instruction,
        value: Optional[int],
        result: RunResult,
        bare: bool = False,
    ):
        assert self._mmio is not None
        # A bare command store still names a register in the Figure 9
        # encoding; software aims it at an input register, whose writes the
        # interface ignores.
        address = encode_address(
            register="i0" if bare else instr.ni_register,
            send_mode=instr.riders.send_mode,
            send_type=instr.riders.send_type,
            do_next=instr.riders.do_next,
        )
        self._mmio.last_send_result = None
        if value is None:
            loaded = self._mmio.load(address)
        else:
            self._mmio.store(address, value)
            loaded = None
        if self._mmio.last_send_result is not None:
            result.send_results.append(self._mmio.last_send_result)
        return loaded

    def _run_riders(self, instr: Instruction, result: RunResult) -> None:
        if instr.riders.send_mode is not None:
            result.send_results.append(
                self.interface.send(instr.riders.send_type, instr.riders.send_mode)
            )
        if instr.riders.do_next:
            self.interface.next()


def _alu(fn: AluFn, a: int, b: int) -> int:
    if fn is AluFn.ADD:
        return to_word(a + b)
    if fn is AluFn.SUB:
        return to_word(a - b)
    if fn is AluFn.AND:
        return a & b
    if fn is AluFn.OR:
        return a | b
    if fn is AluFn.XOR:
        return a ^ b
    if fn is AluFn.SHL:
        return to_word(a << (b & 31))
    if fn is AluFn.SHR:
        return (a & 0xFFFF_FFFF) >> (b & 31)
    raise MachineError(f"unimplemented ALU function {fn}")


def _compare(cond: Cond, a: int, imm: int) -> bool:
    if cond is Cond.EQ:
        return a == to_word(imm)
    if cond is Cond.NE:
        return a != to_word(imm)
    if cond is Cond.LT:
        return a < to_word(imm)
    if cond is Cond.GE:
        return a >= to_word(imm)
    raise MachineError(f"unimplemented condition {cond}")
