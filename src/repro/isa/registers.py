"""Register naming for the 88100-flavoured processor model.

The model keeps the 88100's shape — thirty-two 32-bit general registers
with ``r0`` hard-wired to zero — plus, in the register-file-mapped
implementation (paper Section 3.3), the fifteen interface registers mapped
into the register file under their architectural names (``o0..o4``,
``i0..i4``, ``STATUS``, ``CONTROL``, ``MsgIp``, ``NextMsgIp``, ``IpBase``).

General registers are referred to symbolically throughout the handler
kernels (``a`` for an address, ``fp`` for a frame pointer, ...); symbolic
names keep the sequences readable while this module pins each to a concrete
``r``-register so that register pressure stays honest.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import MachineError

GENERAL_REGISTERS = tuple(f"r{i}" for i in range(32))

NI_INPUT_REGISTERS = ("i0", "i1", "i2", "i3", "i4")
NI_OUTPUT_REGISTERS = ("o0", "o1", "o2", "o3", "o4")
NI_SPECIAL_REGISTERS = ("STATUS", "CONTROL", "MsgIp", "NextMsgIp", "IpBase")
NI_REGISTERS = NI_INPUT_REGISTERS + NI_OUTPUT_REGISTERS + NI_SPECIAL_REGISTERS

# The symbolic scratch names the handler kernels use, pinned to concrete
# general registers.  r1 is reserved as the subroutine return pointer on
# the 88100; the kernels start at r2.
SYMBOLIC_ASSIGNMENT: Dict[str, str] = {
    "a": "r2",  # an address
    "v": "r3",  # a value
    "v2": "r4",  # a second value
    "t": "r5",  # a dispatch target / temporary
    "fp": "r6",  # frame pointer of the running thread
    "ip": "r7",  # instruction pointer temporary
    "stat": "r8",  # a STATUS snapshot (memory-mapped implementations)
    "id": "r9",  # a 32-bit message identifier (basic architecture)
    "p": "r10",  # a list pointer
    "n": "r11",  # a loop counter
    "tag": "r12",  # an I-structure presence tag
    "base": "r13",  # a table base
    "lim": "r14",  # a loop limit
    "x": "r15",  # an element index
    "one": "r16",  # the FULL tag constant
    "nxt": "r17",  # a next-node pointer
    "node": "r18",  # a deferred-list node address
    "ip2": "r19",  # a deferred reader's IP
    "f": "r20",  # a deferred reader's FP
    "b": "r21",  # an array base
    # Values pinned across handlers by software convention:
    "ni_base": "r26",  # base address of the memory-mapped interface
    "ip_base": "r27",  # software copy of IpBase (basic dispatch)
    "send_id": "r28",  # pinned 32-bit id of the frequent Send message
    "frame": "r29",  # base of the frame area
    "heap": "r30",  # base of the I-structure heap
    "zero": "r0",
}


def is_ni_register(name: str) -> bool:
    """Whether ``name`` is one of the fifteen interface registers."""
    return name in NI_REGISTERS


def resolve(name: str) -> str:
    """Map a symbolic or architectural name to its canonical register name.

    Interface registers and ``rN`` names resolve to themselves; symbolic
    scratch names resolve through :data:`SYMBOLIC_ASSIGNMENT`.
    """
    if name in NI_REGISTERS or name in GENERAL_REGISTERS:
        return name
    try:
        return SYMBOLIC_ASSIGNMENT[name]
    except KeyError:
        raise MachineError(f"unknown register name {name!r}") from None


class RegisterFile:
    """The general-purpose register file with ``r0`` wired to zero."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {name: 0 for name in GENERAL_REGISTERS}

    def read(self, name: str) -> int:
        canonical = resolve(name)
        if canonical not in self._values:
            raise MachineError(
                f"register {name!r} is not a general register in this "
                "implementation (interface registers need the register-file "
                "placement)"
            )
        return self._values[canonical]

    def write(self, name: str, value: int) -> None:
        canonical = resolve(name)
        if canonical == "r0":
            return  # r0 ignores writes, as on the 88100
        if canonical not in self._values:
            raise MachineError(f"register {name!r} is not a general register")
        self._values[canonical] = value & 0xFFFF_FFFF

    def snapshot(self) -> Dict[str, int]:
        """Non-zero registers, for debugging and tests."""
        return {name: value for name, value in self._values.items() if value}
