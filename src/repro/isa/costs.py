"""The cycle-cost rules of the performance evaluation (paper Section 4.1).

The paper counts "the number of 88100 RISC processor cycles" for each
handler action.  Three rules generate every number in its Table 1, and this
module encodes exactly those three:

1. **One cycle per issued instruction.**  Commands carried as riders (in
   triadic-instruction bits or in interface-address bits) are free.
2. **Off-chip interface loads have two dead cycles** — "in the 88100
   processor, a loaded value cannot be used in the two cycles following the
   load" (Section 3.1).  A consumer that issues during the dead window
   stalls until the value is ready.  On-chip interface accesses take a
   single cycle (Section 3.2), and data-memory loads are treated as cached
   single-cycle accesses, as the paper's counts require.
3. **Control transfers have one delay slot.**  A transfer whose slot the
   author could fill with useful work charges one cycle; an unfillable slot
   (the paper singles out the dispatch jump of the *basic* architecture)
   charges two.

Rules 2 and 3 interact with scheduling: the optimized sequences mask load
latency and fill delay slots using the ``NextMsgIp`` overlap described in
Section 2.2.3, and they say so explicitly via the ``masked`` /
``slot_filled`` instruction flags, so every such assumption is visible in
the kernel listings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction, Opcode

MASKABLE_DEAD_CYCLES = 2
"""Interface-load dead cycles the NextMsgIp overlap can hide.

The optimized handler schedules fill the off-chip baseline's two dead
cycles with useful work (Section 2.2.3); a longer latency leaves the
remainder exposed, which is what drives the Section 4.2.3 conclusion that
off-chip placement stops scaling."""


@dataclass(frozen=True)
class CostModel:
    """Per-placement timing parameters.

    ``ni_load_dead_cycles`` is the number of cycles after an interface load
    during which its value cannot be consumed (rule 2).  ``mem_load_dead_
    cycles`` is the same for data-memory loads (zero everywhere in the
    paper's accounting, kept as a parameter for the latency-sensitivity
    sweep).
    """

    name: str
    ni_load_dead_cycles: int = 0
    mem_load_dead_cycles: int = 0
    delay_slot_cycles: int = 1

    def load_ready_delay(self, instr: Instruction) -> int:
        """Cycles after issue before ``instr``'s destination is consumable."""
        if instr.opcode is Opcode.NILOAD:
            if instr.masked:
                # The NextMsgIp overlap hides dead cycles behind useful
                # work, but the amount of overlappable work is fixed by
                # the handler's length: the optimized schedules
                # demonstrably cover the paper's 2-cycle baseline, and any
                # latency beyond that stalls (this is exactly why §4.2.3
                # concludes off-chip placement stops being viable as
                # latency grows).
                return 1 + max(0, self.ni_load_dead_cycles - MASKABLE_DEAD_CYCLES)
            return 1 + self.ni_load_dead_cycles
        if instr.opcode is Opcode.LOAD:
            if instr.masked:
                return 1
            return 1 + self.mem_load_dead_cycles
        return 1

    def control_penalty(self, instr: Instruction) -> int:
        """Extra cycles charged for a control transfer's delay slot."""
        if not instr.is_control:
            return 0
        return 0 if instr.slot_filled else self.delay_slot_cycles


OFF_CHIP_COSTS = CostModel("off-chip cache", ni_load_dead_cycles=2)
"""Section 3.1: the NIC on the external cache bus; two dead cycles per load."""

ON_CHIP_COSTS = CostModel("on-chip cache", ni_load_dead_cycles=0)
"""Section 3.2: the interface on the internal cache bus; single-cycle access."""

REGISTER_COSTS = CostModel("register file", ni_load_dead_cycles=0)
"""Section 3.3: interface registers are general registers; no access cost."""


def off_chip_with_latency(read_latency: int) -> CostModel:
    """An off-chip cost model with ``read_latency``-cycle interface reads.

    Used by the Section 4.2.3 sensitivity study: "if the latency is
    increased to 8 cycles instead of 2, then the communication costs of the
    off-chip optimized model will double."  ``read_latency`` counts the
    dead cycles after the load (the paper's 2-cycle baseline).
    """
    if read_latency < 0:
        raise ValueError(f"negative read latency {read_latency}")
    return CostModel(
        f"off-chip cache (latency {read_latency})",
        ni_load_dead_cycles=read_latency,
    )
