"""A placement-aware builder for handler instruction sequences.

The Table 1 kernels exist in three variants — off-chip, on-chip, and
register-file — that differ *mechanically*: where the memory-mapped
variants issue interface loads and stores, the register-file variant names
the interface registers directly (and pays nothing for it).  The
:class:`SequenceBuilder` hides that mechanical difference behind
placement-aware operations (``ni_read`` / ``ni_write`` / ``ni_command``) so
that each kernel can be written once per *architecture* (basic or
optimized) and still expand to the correct instructions per placement —
while anything placement-specific (scheduling, masking) stays explicit in
the kernel source.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AssemblyError
from repro.isa.instructions import (
    AluFn,
    Cond,
    Instruction,
    Opcode,
    Riders,
    Sequence,
)
from repro.isa.machine import Placement
from repro.isa.registers import is_ni_register
from repro.nic.interface import SendMode


class SequenceBuilder:
    """Fluent construction of one :class:`~repro.isa.instructions.Sequence`."""

    def __init__(self, name: str, placement: Placement) -> None:
        self.name = name
        self.placement = placement
        self._instructions: list[Instruction] = []
        self._pending_label: Optional[str] = None

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------

    @property
    def is_register_placement(self) -> bool:
        return self.placement is Placement.REGISTER

    def _riders(
        self,
        send_mode: Optional[SendMode],
        send_type: int,
        do_next: bool,
    ) -> Riders:
        return Riders(send_mode=send_mode, send_type=send_type, do_next=do_next)

    def _emit(self, instr: Instruction) -> "SequenceBuilder":
        if self._pending_label is not None:
            instr = Instruction(
                **{**instr.__dict__, "label": self._pending_label}
            )
            self._pending_label = None
        self._instructions.append(instr)
        return self

    def label(self, name: str) -> "SequenceBuilder":
        """Attach ``name`` to the next emitted instruction."""
        if self._pending_label is not None:
            raise AssemblyError(f"two labels in a row: {self._pending_label}, {name}")
        self._pending_label = name
        return self

    def build(self) -> Sequence:
        if self._pending_label is not None:
            raise AssemblyError(f"dangling label {self._pending_label!r}")
        return Sequence(self.name, list(self._instructions))

    # ------------------------------------------------------------------
    # Arithmetic and moves.
    # ------------------------------------------------------------------

    def alu(
        self,
        fn: AluFn,
        rd: str,
        rs1: str,
        rs2: str,
        send_mode: Optional[SendMode] = None,
        send_type: int = 0,
        do_next: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        return self._emit(
            Instruction(
                Opcode.ALU,
                rd=rd,
                rs1=rs1,
                rs2=rs2,
                fn=fn,
                riders=self._riders(send_mode, send_type, do_next),
                note=note,
            )
        )

    def alui(
        self,
        fn: AluFn,
        rd: str,
        rs1: str,
        imm: int,
        send_mode: Optional[SendMode] = None,
        send_type: int = 0,
        do_next: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        return self._emit(
            Instruction(
                Opcode.ALUI,
                rd=rd,
                rs1=rs1,
                imm=imm,
                fn=fn,
                riders=self._riders(send_mode, send_type, do_next),
                note=note,
            )
        )

    def mov(
        self,
        rd: str,
        rs: str,
        send_mode: Optional[SendMode] = None,
        send_type: int = 0,
        do_next: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        """``or rd, rs, r0`` — the 88100's register move idiom."""
        return self.alu(
            AluFn.OR,
            rd,
            rs,
            "r0",
            send_mode=send_mode,
            send_type=send_type,
            do_next=do_next,
            note=note,
        )

    def loadimm(self, rd: str, imm: int, note: str = "") -> "SequenceBuilder":
        """Load a 16-bit immediate in one instruction.

        Wider constants need two instructions on the 88100 (``or.u`` +
        ``or``); the kernels only ever materialise small constants, and the
        builder enforces that so the cycle counts stay honest.
        """
        if imm < 0 or imm > 0xFFFF:
            raise AssemblyError(
                f"immediate {imm:#x} does not fit the 16-bit single-"
                "instruction form; materialise it in two steps"
            )
        return self._emit(Instruction(Opcode.LOADIMM, rd=rd, imm=imm, note=note))

    # ------------------------------------------------------------------
    # Data memory.
    # ------------------------------------------------------------------

    def mem_load(
        self,
        rd: str,
        base: str,
        offset: int = 0,
        masked: bool = False,
        send_mode: Optional[SendMode] = None,
        send_type: int = 0,
        do_next: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        return self._emit(
            Instruction(
                Opcode.LOAD,
                rd=rd,
                rs1=base,
                imm=offset,
                masked=masked,
                riders=self._riders(send_mode, send_type, do_next),
                note=note,
            )
        )

    def mem_store(
        self,
        value: str,
        base: str,
        offset: int = 0,
        send_mode: Optional[SendMode] = None,
        send_type: int = 0,
        do_next: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        return self._emit(
            Instruction(
                Opcode.STORE,
                rs1=base,
                rs2=value,
                imm=offset,
                riders=self._riders(send_mode, send_type, do_next),
                note=note,
            )
        )

    # ------------------------------------------------------------------
    # Interface access — the placement-dependent operations.
    # ------------------------------------------------------------------

    def ni_read(
        self,
        rd: str,
        ni_register: str,
        masked: bool = False,
        send_mode: Optional[SendMode] = None,
        send_type: int = 0,
        do_next: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        """Move an interface register's value into a general register.

        Memory-mapped placements expand to an interface load (with the
        riders in the address); the register placement expands to a plain
        move, since the interface register *is* a register.
        """
        if not is_ni_register(ni_register):
            raise AssemblyError(f"{ni_register!r} is not an interface register")
        riders = self._riders(send_mode, send_type, do_next)
        if self.is_register_placement:
            return self._emit(
                Instruction(
                    Opcode.ALU,
                    rd=rd,
                    rs1=ni_register,
                    rs2="r0",
                    fn=AluFn.OR,
                    riders=riders,
                    note=note,
                )
            )
        return self._emit(
            Instruction(
                Opcode.NILOAD,
                rd=rd,
                ni_register=ni_register,
                masked=masked,
                riders=riders,
                note=note,
            )
        )

    def ni_write(
        self,
        ni_register: str,
        value: str,
        send_mode: Optional[SendMode] = None,
        send_type: int = 0,
        do_next: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        """Move a general register's value into an interface register."""
        if not is_ni_register(ni_register):
            raise AssemblyError(f"{ni_register!r} is not an interface register")
        riders = self._riders(send_mode, send_type, do_next)
        if self.is_register_placement:
            return self._emit(
                Instruction(
                    Opcode.ALU,
                    rd=ni_register,
                    rs1=value,
                    rs2="r0",
                    fn=AluFn.OR,
                    riders=riders,
                    note=note,
                )
            )
        return self._emit(
            Instruction(
                Opcode.NISTORE,
                ni_register=ni_register,
                rs2=value,
                riders=riders,
                note=note,
            )
        )

    def ni_command(
        self,
        send_mode: Optional[SendMode] = None,
        send_type: int = 0,
        do_next: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        """Issue SEND and/or NEXT with no useful register work.

        Costs one instruction in every placement: a bare command store in
        the memory-mapped placements, a rider-carrying no-op (``or r0, r0,
        r0``) in the register placement.
        """
        riders = self._riders(send_mode, send_type, do_next)
        if not riders.any:
            raise AssemblyError("ni_command needs at least one command")
        if self.is_register_placement:
            return self._emit(
                Instruction(
                    Opcode.ALU,
                    rd="r0",
                    rs1="r0",
                    rs2="r0",
                    fn=AluFn.OR,
                    riders=riders,
                    note=note or "bare command",
                )
            )
        return self._emit(
            Instruction(Opcode.NICMD, riders=riders, note=note or "bare command")
        )

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------

    def jump_reg(
        self, rs: str, slot_filled: bool = False, note: str = ""
    ) -> "SequenceBuilder":
        return self._emit(
            Instruction(
                Opcode.JUMPREG, rs1=rs, slot_filled=slot_filled, note=note
            )
        )

    def branch(
        self, target: str, slot_filled: bool = False, note: str = ""
    ) -> "SequenceBuilder":
        return self._emit(
            Instruction(
                Opcode.BRANCH, target=target, slot_filled=slot_filled, note=note
            )
        )

    def branch_bit(
        self,
        bit: int,
        rs: str,
        target: str,
        on_set: bool = True,
        slot_filled: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        return self._emit(
            Instruction(
                Opcode.BRANCHBIT,
                rs1=rs,
                bit=bit,
                branch_on_set=on_set,
                target=target,
                slot_filled=slot_filled,
                note=note,
            )
        )

    def branch_cond(
        self,
        cond: Cond,
        rs: str,
        imm: int,
        target: str,
        slot_filled: bool = False,
        note: str = "",
    ) -> "SequenceBuilder":
        return self._emit(
            Instruction(
                Opcode.BRANCHCOND,
                rs1=rs,
                imm=imm,
                cond=cond,
                target=target,
                slot_filled=slot_filled,
                note=note,
            )
        )

    def nop(self, note: str = "") -> "SequenceBuilder":
        return self._emit(Instruction(Opcode.NOP, note=note))

    def halt(self) -> "SequenceBuilder":
        return self._emit(Instruction(Opcode.HALT))
