"""The 88100-flavoured RISC substrate: instructions, costs, executor."""

from repro.isa.assembler import SequenceBuilder
from repro.isa.costs import (
    OFF_CHIP_COSTS,
    ON_CHIP_COSTS,
    REGISTER_COSTS,
    CostModel,
    off_chip_with_latency,
)
from repro.isa.instructions import AluFn, Cond, Instruction, Opcode, Riders, Sequence
from repro.isa.machine import Machine, Placement, RunResult
from repro.isa.registers import RegisterFile, is_ni_register, resolve

__all__ = [
    "AluFn",
    "Cond",
    "CostModel",
    "Instruction",
    "Machine",
    "OFF_CHIP_COSTS",
    "ON_CHIP_COSTS",
    "Opcode",
    "Placement",
    "REGISTER_COSTS",
    "RegisterFile",
    "Riders",
    "RunResult",
    "Sequence",
    "SequenceBuilder",
    "is_ni_register",
    "off_chip_with_latency",
    "resolve",
]
