"""The 88100-flavoured instruction set used by the handler kernels.

The model keeps exactly the features the paper's cycle counts depend on:

* triadic register-register ALU operations, which in the register-file
  implementation carry the ``SEND`` / ``NEXT`` *rider* bits in their unused
  encoding space (paper Section 3.3);
* loads and stores, which in the memory-mapped implementations address the
  interface through the Figure 9 command encoding;
* register-indirect jumps and conditional branches with one architectural
  delay slot (the 88100's).

Every instruction can state two scheduling facts the evaluation relies on
(Section 2.2.3 discusses both):

* ``slot_filled`` on a control transfer — the delay slot holds useful work,
  so no cycle is charged for it;
* ``masked`` on an interface load — the surrounding schedule guarantees the
  loaded value is not consumed during the load's dead cycles (the
  ``NextMsgIp`` overlap trick), so no stall is charged.

Both are assumptions the *sequence author* makes; the cost model charges
conservatively whenever they are absent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.nic.interface import SendMode


class Opcode(enum.Enum):
    """Instruction kinds."""

    ALU = "alu"  # rd <- rs1 op rs2 (triadic; may carry riders)
    ALUI = "alui"  # rd <- rs1 op imm16
    LOADIMM = "loadimm"  # rd <- imm (one instruction; 16-bit immediates)
    LOAD = "load"  # rd <- mem[rs1 + imm]
    STORE = "store"  # mem[rs1 + imm] <- rs2
    NILOAD = "niload"  # rd <- interface register (memory mapped)
    NISTORE = "nistore"  # interface register <- rs2 (memory mapped)
    NICMD = "nicmd"  # bare command store to the interface (memory mapped)
    JUMPREG = "jumpreg"  # pc <- rs1
    BRANCH = "branch"  # unconditional pc <- label
    BRANCHBIT = "branchbit"  # branch on a bit of rs1 (88100 bb0/bb1)
    BRANCHCOND = "branchcond"  # branch on rs1 cmp imm
    NOP = "nop"
    HALT = "halt"


class AluFn(enum.Enum):
    """ALU functions (the subset the kernels need)."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"


class Cond(enum.Enum):
    """Branch conditions for BRANCHCOND (register compared to immediate)."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    GE = "ge"


@dataclass(frozen=True)
class Riders:
    """The command bits a single instruction can carry.

    In the register-file implementation these ride in unused bits of any
    triadic instruction; in the memory-mapped implementations they ride in
    the low bits of an interface address (Figure 9).  Either way they add
    no cycles.
    """

    send_mode: Optional[SendMode] = None
    send_type: int = 0
    do_next: bool = False

    @property
    def any(self) -> bool:
        return self.send_mode is not None or self.do_next

    def describe(self) -> str:
        parts = []
        if self.send_mode is not None:
            mode = "" if self.send_mode is SendMode.NORMAL else f"-{self.send_mode.value}"
            parts.append(f"SEND{mode} type={self.send_type}")
        if self.do_next:
            parts.append("NEXT")
        return ", ".join(parts)


NO_RIDERS = Riders()


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    The operand fields are interpreted per :class:`Opcode`; unused fields
    stay None.  ``label`` names this instruction as a branch target.
    """

    opcode: Opcode
    rd: Optional[str] = None
    rs1: Optional[str] = None
    rs2: Optional[str] = None
    imm: int = 0
    fn: Optional[AluFn] = None
    cond: Optional[Cond] = None
    bit: int = 0
    branch_on_set: bool = True
    target: Optional[str] = None
    label: Optional[str] = None
    ni_register: Optional[str] = None
    riders: Riders = NO_RIDERS
    slot_filled: bool = False
    masked: bool = False
    note: str = ""

    def render(self) -> str:
        """A readable one-line assembly rendering (for docs and listings)."""
        text = self._render_core()
        if self.riders.any:
            text = f"{text:<28s}; +{self.riders.describe()}"
        if self.slot_filled and self.opcode in (
            Opcode.JUMPREG,
            Opcode.BRANCH,
            Opcode.BRANCHBIT,
            Opcode.BRANCHCOND,
        ):
            text += "  (slot filled)"
        if self.masked:
            text += "  (latency masked)"
        if self.note:
            text += f"  ; {self.note}"
        if self.label:
            text = f"{self.label}:\n    {text}"
        else:
            text = f"    {text}"
        return text

    def _render_core(self) -> str:
        op = self.opcode
        if op is Opcode.ALU:
            return f"{self.fn.value}  {self.rd}, {self.rs1}, {self.rs2}"
        if op is Opcode.ALUI:
            return f"{self.fn.value}i {self.rd}, {self.rs1}, {self.imm:#x}"
        if op is Opcode.LOADIMM:
            return f"mov  {self.rd}, {self.imm:#x}"
        if op is Opcode.LOAD:
            return f"ld   {self.rd}, [{self.rs1}+{self.imm:#x}]"
        if op is Opcode.STORE:
            return f"st   {self.rs2}, [{self.rs1}+{self.imm:#x}]"
        if op is Opcode.NILOAD:
            return f"ld   {self.rd}, NI[{self.ni_register}]"
        if op is Opcode.NISTORE:
            return f"st   {self.rs2}, NI[{self.ni_register}]"
        if op is Opcode.NICMD:
            return "st   r0, NI[cmd]"
        if op is Opcode.JUMPREG:
            return f"jmp  {self.rs1}"
        if op is Opcode.BRANCH:
            return f"br   {self.target}"
        if op is Opcode.BRANCHBIT:
            mnemonic = "bb1" if self.branch_on_set else "bb0"
            return f"{mnemonic}  {self.bit}, {self.rs1}, {self.target}"
        if op is Opcode.BRANCHCOND:
            return f"b{self.cond.value}  {self.rs1}, {self.imm:#x}, {self.target}"
        if op is Opcode.NOP:
            return "nop"
        if op is Opcode.HALT:
            return "halt"
        raise AssertionError(f"unrenderable opcode {op}")

    @property
    def is_control(self) -> bool:
        return self.opcode in (
            Opcode.JUMPREG,
            Opcode.BRANCH,
            Opcode.BRANCHBIT,
            Opcode.BRANCHCOND,
        )

    def source_registers(self) -> Tuple[str, ...]:
        """Registers whose values this instruction consumes."""
        sources = []
        if self.opcode in (Opcode.ALU,):
            sources = [self.rs1, self.rs2]
        elif self.opcode in (Opcode.ALUI, Opcode.JUMPREG, Opcode.BRANCHBIT, Opcode.BRANCHCOND):
            sources = [self.rs1]
        elif self.opcode is Opcode.LOAD:
            sources = [self.rs1]
        elif self.opcode is Opcode.STORE:
            sources = [self.rs1, self.rs2]
        elif self.opcode is Opcode.NISTORE:
            sources = [self.rs2]
        return tuple(s for s in sources if s is not None)


@dataclass
class Sequence:
    """An ordered handler/stub instruction sequence with a name."""

    name: str
    instructions: list = field(default_factory=list)
    # label_map() cache: (length at build time, {label: index}).  The
    # length guards against the common mutation — appending instructions —
    # so callers that grow a sequence between runs get a fresh map.
    _label_cache: object = field(default=None, repr=False, compare=False)

    def label_map(self) -> dict:
        """``{label: instruction index}``, cached per sequence.

        The Table 1 harness runs the same handler sequence thousands of
        times; rebuilding this map per run dominated short-sequence
        timing.  Raises on duplicate labels (same contract the machine
        has always enforced).
        """
        cache = self._label_cache
        if cache is not None and cache[0] == len(self.instructions):
            return cache[1]
        labels: dict = {}
        for index, instr in enumerate(self.instructions):
            if instr.label:
                if instr.label in labels:
                    raise ValueError(f"duplicate label {instr.label!r}")
                labels[instr.label] = index
        self._label_cache = (len(self.instructions), labels)
        return labels

    def listing(self) -> str:
        """The whole sequence as readable assembly."""
        lines = [f"; {self.name}"]
        lines.extend(instr.render() for instr in self.instructions)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)
