"""Pluggable routing policies: (node, destination, congestion) → ports.

The paper's architecture assumes only *some* network that delivers
five-word messages and exerts backpressure; which route a message takes
is a property of the machine the interface is dropped into, not of the
interface.  This module makes that separation explicit:

* :class:`~repro.network.topology.Topology` describes **structure** —
  nodes, links, neighbors, closed-form distance;
* a :class:`RoutingPolicy` maps a message's position, its destination,
  and the router's *local congestion view* to an ordered tuple of
  candidate output ports, each a ``(next node, virtual channel)`` pair.

Three policies cover the classic design points (the gem5/Garnet sweep
the evaluation mirrors uses the same trio):

* :class:`DimensionOrder` — deterministic minimal routing, one
  candidate, one virtual channel.  Byte-identical to the pre-refactor
  behaviour where each topology baked in its own ``next_hop``.
* :class:`AdaptiveRandom` — minimal-adaptive: every productive neighbor
  is a candidate, preferred by downstream buffer space, ties broken by
  a seeded RNG so runs stay reproducible.  No escape path — this policy
  *can* deadlock, which is exactly what the deadlock detector's tests
  exploit.
* :class:`EscapeVC` — minimal-adaptive on virtual channel 1 with a
  dimension-order **escape** channel on virtual channel 0 (Duato's
  scheme): whenever the adaptive candidates are all blocked, the
  deadlock-free escape channel is still offered, so cyclic waits cannot
  close.

Policies are stateless except for their RNG, so one instance drives a
whole fabric; construct a fresh policy (same seed) to replay a run
bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Callable, Tuple

from repro.errors import RoutingError
from repro.network.topology import Hypercube, Mesh2D, Topology, Torus2D

#: One candidate output port: (next node, virtual channel).
Port = Tuple[int, int]

#: The router's local congestion view: free downstream buffer slots for
#: the link to ``next_node`` on ``vc``, as of the start of the cycle.
FreeSlots = Callable[[int, int], int]

#: Registry of policy names accepted by ``routing=`` knobs.
POLICY_NAMES = ("dimension-order", "adaptive-random", "escape-vc")


def make_policy(name: str, seed: int = 0) -> "RoutingPolicy":
    """Build a policy from its CLI/sweep name (see :data:`POLICY_NAMES`)."""
    if name == "dimension-order":
        return DimensionOrder()
    if name == "adaptive-random":
        return AdaptiveRandom(seed=seed)
    if name == "escape-vc":
        return EscapeVC(seed=seed)
    raise RoutingError(
        f"unknown routing policy {name!r}; known: {', '.join(POLICY_NAMES)}"
    )


class RoutingPolicy:
    """Maps (node, destination, congestion view) to candidate ports.

    ``num_vcs`` is the number of virtual channels the policy needs on
    every link; the fabric sizes its routers' buffers from it.  The
    candidate tuple is ordered by preference — the router's output
    arbitration walks it and takes the first port whose physical link is
    free this cycle and whose downstream buffer has credit, falling back
    to the first free-link candidate (charged as a blocked move) when
    none has credit.
    """

    name: str = "policy"
    num_vcs: int = 1

    def candidates(
        self,
        topology: Topology,
        node: int,
        destination: int,
        free_slots: FreeSlots,
    ) -> Tuple[Port, ...]:
        """Ordered candidate output ports for one head-of-buffer message."""
        raise NotImplementedError


def minimal_neighbors(
    topology: Topology, node: int, destination: int
) -> Tuple[int, ...]:
    """Neighbors strictly closer to ``destination``, ascending node id.

    Closed-form :meth:`~repro.network.topology.Topology.distance` makes
    this O(degree); the sorted order is what keeps adaptive policies
    deterministic under a fixed RNG seed.
    """
    here = topology.distance(node, destination)
    return tuple(
        sorted(
            neighbor
            for neighbor in topology.neighbors(node)
            if topology.distance(neighbor, destination) < here
        )
    )


class DimensionOrder(RoutingPolicy):
    """Deterministic dimension-order routing; the pre-refactor behaviour.

    * Mesh: correct X to the destination column, then Y.
    * Torus: same, but each axis steps in its shortest wrap direction
      (ties break toward +1, exactly the legacy ``_step_toward``).
    * Hypercube: flip the lowest differing address bit.

    One candidate, virtual channel 0, ignoring congestion — a blocked
    link simply waits, which is what makes the policy deterministic and
    (on the mesh and hypercube) deadlock-free.
    """

    name = "dimension-order"
    num_vcs = 1

    def next_hop(self, topology: Topology, node: int, destination: int) -> int:
        """The single deterministic next node toward ``destination``."""
        topology.check_node(node)
        topology.check_node(destination)
        if node == destination:
            raise RoutingError(f"next_hop called at the destination {node}")
        # Torus before Mesh: Torus2D subclasses Mesh2D.
        if isinstance(topology, Torus2D):
            return self._torus_hop(topology, node, destination)
        if isinstance(topology, Mesh2D):
            return self._mesh_hop(topology, node, destination)
        if isinstance(topology, Hypercube):
            return self._hypercube_hop(node, destination)
        raise RoutingError(
            f"dimension-order routing does not know {type(topology).__name__}"
        )

    @staticmethod
    def _mesh_hop(topology: Mesh2D, node: int, destination: int) -> int:
        x, y = topology.coordinates(node)
        dx, dy = topology.coordinates(destination)
        if x < dx:
            return topology.node_at(x + 1, y)
        if x > dx:
            return topology.node_at(x - 1, y)
        if y < dy:
            return topology.node_at(x, y + 1)
        return topology.node_at(x, y - 1)

    @staticmethod
    def _step_toward(position: int, target: int, size: int) -> int:
        """One wrap-aware step along a torus axis; ties go forward (+1)."""
        forward = (target - position) % size
        backward = (position - target) % size
        if forward == 0:
            return position
        if forward <= backward:
            return (position + 1) % size
        return (position - 1) % size

    @classmethod
    def _torus_hop(cls, topology: Torus2D, node: int, destination: int) -> int:
        x, y = topology.coordinates(node)
        dx, dy = topology.coordinates(destination)
        nx = cls._step_toward(x, dx, topology.width)
        if nx != x:
            return topology.node_at(nx, y)
        ny = cls._step_toward(y, dy, topology.height)
        return topology.node_at(x, ny)

    @staticmethod
    def _hypercube_hop(node: int, destination: int) -> int:
        diff = node ^ destination
        lowest = diff & -diff
        return node ^ lowest

    def candidates(
        self,
        topology: Topology,
        node: int,
        destination: int,
        free_slots: FreeSlots,
    ) -> Tuple[Port, ...]:
        return ((self.next_hop(topology, node, destination), 0),)


class AdaptiveRandom(RoutingPolicy):
    """Minimal-adaptive routing with seeded-random tie-breaking.

    All productive neighbors are candidates.  They are offered most-free
    downstream buffer first; among equally-free links the seeded RNG
    picks the leader and the rest follow in ascending node id, so the
    whole run is a pure function of the seed.  With a single virtual
    channel and no escape path, cyclic channel waits are possible — see
    :class:`EscapeVC` for the deadlock-free variant and
    :meth:`repro.network.fabric.Fabric.find_deadlock` for the detector
    this policy's failure mode exercises.
    """

    name = "adaptive-random"
    num_vcs = 1

    #: Virtual channel the adaptive candidates use.
    adaptive_vc = 0

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def _adaptive_ports(
        self,
        topology: Topology,
        node: int,
        destination: int,
        free_slots: FreeSlots,
    ) -> Tuple[Port, ...]:
        minimal = minimal_neighbors(topology, node, destination)
        if not minimal:
            raise RoutingError(
                f"no productive neighbor from {node} to {destination} in "
                f"{topology.describe()}"
            )
        vc = self.adaptive_vc
        if len(minimal) == 1:
            return ((minimal[0], vc),)
        free = {neighbor: free_slots(neighbor, vc) for neighbor in minimal}
        best = max(free.values())
        pool = [neighbor for neighbor in minimal if free[neighbor] == best]
        leader = pool[0] if len(pool) == 1 else self._rng.choice(pool)
        rest = sorted(
            (n for n in minimal if n != leader),
            key=lambda n: (-free[n], n),
        )
        return ((leader, vc),) + tuple((n, vc) for n in rest)

    def candidates(
        self,
        topology: Topology,
        node: int,
        destination: int,
        free_slots: FreeSlots,
    ) -> Tuple[Port, ...]:
        return self._adaptive_ports(topology, node, destination, free_slots)


class EscapeVC(AdaptiveRandom):
    """Minimal-adaptive with a dimension-order escape virtual channel.

    Virtual channel 1 carries the adaptive candidates (exactly
    :class:`AdaptiveRandom`'s, same RNG discipline); virtual channel 0
    is the **escape** channel, always offered last, routed strictly
    dimension-order.  Because the escape channel's dependency graph is
    the deadlock-free dimension-order one (acyclic on the mesh and
    hypercube) and every blocked message is eventually offered it, a
    cycle of waits cannot involve only full buffers — Duato's condition.

    On a torus the wraparound links make dimension-order cyclic within
    each ring, so the escape path additionally applies Dally's
    **dateline** discipline: the wraparound link of each directed ring
    is its dateline, a leg that still has the dateline ahead of it rides
    escape channel 0, and a leg past the dateline (or one that never
    crosses it) rides the dateline channel (virtual channel 2).  The
    dateline link itself is only ever requested on channel 0 and every
    transition is 0 → 2, never back, so the escape dependency graph is
    acyclic on the torus too — the policy is deadlock-free on all three
    topologies.  ``dateline=False`` reinstates the single-escape-channel
    behaviour (deadlockable on a torus) for the regression tests.

    A message may hop between adaptive and escape channels freely: the
    candidates are recomputed at every router from the message's current
    position, never from which channel it arrived on.
    """

    name = "escape-vc"
    num_vcs = 3
    adaptive_vc = 1

    #: The escape channel: dimension-order, virtual channel 0.
    escape_vc = 0

    #: The post-dateline escape channel on torus wraparound rings.
    dateline_vc = 2

    def __init__(self, seed: int = 0, dateline: bool = True) -> None:
        super().__init__(seed=seed)
        self._escape = DimensionOrder()
        self.dateline = dateline
        if not dateline:
            self.num_vcs = 2

    @staticmethod
    def _crosses_dateline(position: int, target: int, size: int) -> bool:
        """Whether the remaining ring leg still traverses the wrap link.

        Travel direction matches :meth:`DimensionOrder._step_toward`
        (shortest way round, ties forward): moving forward the dateline
        is the ``size-1 -> 0`` link, crossed iff ``target < position``;
        moving backward it is ``0 -> size-1``, crossed iff
        ``target > position``.
        """
        forward = (target - position) % size
        backward = (position - target) % size
        if forward <= backward:
            return target < position
        return target > position

    def _escape_port(
        self, topology: Topology, node: int, destination: int
    ) -> Port:
        """The dimension-order escape candidate with its dateline channel."""
        hop = self._escape.next_hop(topology, node, destination)
        if not self.dateline or not isinstance(topology, Torus2D):
            return (hop, self.escape_vc)
        x, y = topology.coordinates(node)
        dx, dy = topology.coordinates(destination)
        hx, hy = topology.coordinates(hop)
        if hx != x:  # routing the X ring
            crosses = self._crosses_dateline(x, dx, topology.width)
        else:  # X done; routing the Y ring
            crosses = self._crosses_dateline(y, dy, topology.height)
        return (hop, self.escape_vc if crosses else self.dateline_vc)

    def candidates(
        self,
        topology: Topology,
        node: int,
        destination: int,
        free_slots: FreeSlots,
    ) -> Tuple[Port, ...]:
        adaptive = self._adaptive_ports(topology, node, destination, free_slots)
        return adaptive + (self._escape_port(topology, node, destination),)
