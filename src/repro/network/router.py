"""A per-node router with bounded buffers and credit backpressure.

The router moves whole messages (the flit-serial view lives in
:mod:`repro.nic.rtl`); what matters to the architecture's flow-control
story (paper Section 2.1.1) is preserved exactly:

* every buffer is bounded, so a slow receiver backs the network up;
* a message advances only when the next buffer has space — credit flow
  control — so nothing is ever dropped;
* when the backpressure reaches a sender's output queue, its ``SEND``
  stalls or traps per the CONTROL register.

Each router has one input buffer per incoming link, an injection buffer
fed by the local interface's output queue, and an ejection path into the
local interface's input queue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.nic.messages import Message
from repro.obs.tracer import HOP, INJECT, Tracer


def _zero_clock() -> int:
    return 0


@dataclass
class InTransit:
    """A message inside the fabric, with bookkeeping for statistics."""

    message: Message
    injected_at: int
    hops: int = 0


@dataclass
class RouterStats:
    """Per-router traffic counters; each counts exactly one thing.

    * ``injected`` — messages that entered the network here, from the
      local interface's output queue.
    * ``forwarded`` — messages this router passed onward to a *neighbor*
      router.  The final hop into the local interface is never counted
      here, so across a delivered message's life ``sum(forwarded)``
      equals its hop count and ``forwarded + ejected`` never
      double-counts the ejection hop.
    * ``ejected`` — messages this router handed to its local interface
      (delivery accepted, whether queued or diverted).
    * ``blocked_moves`` — head-of-buffer service opportunities lost to a
      lack of credit: one per cycle per output port whose chosen message
      could not move.  A router with two blocked outputs in one cycle
      counts two.
    """

    injected: int = 0
    forwarded: int = 0
    ejected: int = 0
    blocked_moves: int = 0


class Router:
    """One node's router."""

    def __init__(
        self,
        node: int,
        neighbors: Tuple[int, ...],
        link_buffer_depth: int = 4,
        injection_depth: int = 4,
    ) -> None:
        if link_buffer_depth < 1 or injection_depth < 1:
            raise NetworkError("router buffers must hold at least one message")
        self.node = node
        self.link_buffer_depth = link_buffer_depth
        self.injection_depth = injection_depth
        self.in_buffers: Dict[int, Deque[InTransit]] = {
            neighbor: deque() for neighbor in neighbors
        }
        self.injection: Deque[InTransit] = deque()
        self.stats = RouterStats()
        self.tracer: Optional[Tracer] = None
        self._clock: Callable[[], int] = _zero_clock

    def attach_tracer(
        self, tracer: Tracer, clock: Optional[Callable[[], int]] = None
    ) -> None:
        """Opt in to event tracing; ``clock`` supplies the current cycle."""
        self.tracer = tracer
        if clock is not None:
            self._clock = clock

    # ------------------------------------------------------------------
    # Capacity checks (credits).
    # ------------------------------------------------------------------

    def can_accept_from(self, neighbor: int) -> bool:
        if neighbor not in self.in_buffers:
            raise NetworkError(
                f"router {self.node} has no link from {neighbor}"
            )
        return len(self.in_buffers[neighbor]) < self.link_buffer_depth

    def can_inject(self) -> bool:
        return len(self.injection) < self.injection_depth

    # ------------------------------------------------------------------
    # Data movement.
    # ------------------------------------------------------------------

    def accept_from(self, neighbor: int, item: InTransit) -> None:
        """Take one message arriving over the link from ``neighbor``.

        The *sending* router's ``forwarded`` counter is maintained by the
        fabric at the move; accepting counts only the hop itself.
        """
        if not self.can_accept_from(neighbor):
            raise NetworkError(
                f"router {self.node}: link buffer from {neighbor} is full"
            )
        item.hops += 1
        self.in_buffers[neighbor].append(item)
        if self.tracer is not None:
            self.tracer.emit(
                self._clock(),
                HOP,
                self.node,
                src=neighbor,
                dest=item.message.destination,
                hops=item.hops,
            )

    def inject(self, item: InTransit) -> None:
        if not self.can_inject():
            raise NetworkError(f"router {self.node}: injection buffer full")
        self.injection.append(item)
        self.stats.injected += 1
        if self.tracer is not None:
            self.tracer.emit(
                self._clock(),
                INJECT,
                self.node,
                dest=item.message.destination,
            )

    def pending_sources(self) -> List[Optional[int]]:
        """Buffer identifiers with a message ready, in service order.

        ``None`` identifies the injection buffer.  Link buffers are served
        before injection so network traffic drains ahead of new load —
        the usual anti-livelock priority.
        """
        order: List[Optional[int]] = [
            neighbor for neighbor, buffer in self.in_buffers.items() if buffer
        ]
        if self.injection:
            order.append(None)
        return order

    def peek(self, source: Optional[int]) -> InTransit:
        buffer = self.injection if source is None else self.in_buffers[source]
        if not buffer:
            raise NetworkError(f"router {self.node}: buffer {source} is empty")
        return buffer[0]

    def take(self, source: Optional[int]) -> InTransit:
        buffer = self.injection if source is None else self.in_buffers[source]
        if not buffer:
            raise NetworkError(f"router {self.node}: buffer {source} is empty")
        return buffer.popleft()

    @property
    def occupancy(self) -> int:
        return len(self.injection) + sum(len(b) for b in self.in_buffers.values())

    def is_idle(self) -> bool:
        return self.occupancy == 0
