"""A per-node router with per-VC bounded buffers and credit backpressure.

The router moves whole messages (the flit-serial view lives in
:mod:`repro.nic.rtl`); what matters to the architecture's flow-control
story (paper Section 2.1.1) is preserved exactly:

* every buffer is bounded, so a slow receiver backs the network up;
* a message advances only when the next buffer has space — credit flow
  control — so nothing is ever dropped;
* when the backpressure reaches a sender's output queue, its ``SEND``
  stalls or traps per the CONTROL register.

Each incoming link carries ``num_vcs`` virtual channels, each with its
own bounded buffer and its own credit; which channel a message rides is
the routing policy's choice (:mod:`repro.network.routing` — adaptive
policies spread over channels, :class:`~repro.network.routing.EscapeVC`
reserves channel 0 as the dimension-order escape path).  With the
default single channel the router is byte-identical to its pre-VC self.

A buffer is identified by its *source key*: ``(neighbor, vc)`` for a
link channel, ``None`` for the injection buffer fed by the local
interface's output queue.  The ejection path into the local interface's
input queue needs no buffer of its own.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.errors import NetworkError
from repro.nic.messages import Message
from repro.obs.tracer import HOP, INJECT, Tracer

#: A link buffer's identity: (upstream neighbor, virtual channel).
#: ``None`` identifies the injection buffer.  A bare neighbor id is
#: accepted anywhere a source key is and means its channel 0.
SourceKey = Optional[Union[int, Tuple[int, int]]]


def _zero_clock() -> int:
    return 0


@dataclass
class InTransit:
    """A message inside the fabric, with bookkeeping for statistics."""

    message: Message
    injected_at: int
    hops: int = 0


@dataclass
class RouterStats:
    """Per-router traffic counters; each counts exactly one thing.

    * ``injected`` — messages that entered the network here, from the
      local interface's output queue.
    * ``forwarded`` — messages this router passed onward to a *neighbor*
      router.  The final hop into the local interface is never counted
      here, so across a delivered message's life ``sum(forwarded)``
      equals its hop count and ``forwarded + ejected`` never
      double-counts the ejection hop.
    * ``ejected`` — messages this router handed to its local interface
      (delivery accepted, whether queued or diverted).
    * ``blocked_moves`` — head-of-buffer service opportunities lost to a
      lack of credit: one per cycle per output port whose chosen message
      could not move.  A router with two blocked outputs in one cycle
      counts two.
    """

    injected: int = 0
    forwarded: int = 0
    ejected: int = 0
    blocked_moves: int = 0


class Router:
    """One node's router."""

    def __init__(
        self,
        node: int,
        neighbors: Tuple[int, ...],
        link_buffer_depth: int = 4,
        injection_depth: int = 4,
        num_vcs: int = 1,
    ) -> None:
        if link_buffer_depth < 1 or injection_depth < 1:
            raise NetworkError("router buffers must hold at least one message")
        if num_vcs < 1:
            raise NetworkError("routers need at least one virtual channel")
        self.node = node
        self.neighbors = tuple(neighbors)
        self.link_buffer_depth = link_buffer_depth
        self.injection_depth = injection_depth
        self.num_vcs = num_vcs
        # Neighbor-major, channel-minor: with one VC the iteration order
        # is exactly the old per-neighbor order.
        self.in_buffers: Dict[Tuple[int, int], Deque[InTransit]] = {
            (neighbor, vc): deque()
            for neighbor in self.neighbors
            for vc in range(num_vcs)
        }
        self.injection: Deque[InTransit] = deque()
        self.stats = RouterStats()
        self.tracer: Optional[Tracer] = None
        self.lineage = None
        self._clock: Callable[[], int] = _zero_clock

    def attach_tracer(
        self, tracer: Tracer, clock: Optional[Callable[[], int]] = None
    ) -> None:
        """Opt in to event tracing; ``clock`` supplies the current cycle."""
        self.tracer = tracer
        if clock is not None:
            self._clock = clock

    def attach_lineage(
        self, lineage, clock: Optional[Callable[[], int]] = None
    ) -> None:
        """Opt in to lineage span tracing (same contract as the tracer)."""
        self.lineage = lineage
        if clock is not None:
            self._clock = clock

    def _buffer_key(self, neighbor: int, vc: int) -> Tuple[int, int]:
        key = (neighbor, vc)
        if key not in self.in_buffers:
            raise NetworkError(
                f"router {self.node} has no link from {neighbor} vc{vc}"
            )
        return key

    # ------------------------------------------------------------------
    # Capacity checks (credits).
    # ------------------------------------------------------------------

    def can_accept_from(self, neighbor: int, vc: int = 0) -> bool:
        return len(self.in_buffers[self._buffer_key(neighbor, vc)]) < (
            self.link_buffer_depth
        )

    def free_slots(self, neighbor: int, vc: int = 0) -> int:
        """Remaining credit on the (neighbor, vc) buffer — the congestion
        view adaptive policies rank candidates by."""
        return self.link_buffer_depth - len(
            self.in_buffers[self._buffer_key(neighbor, vc)]
        )

    def can_inject(self) -> bool:
        return len(self.injection) < self.injection_depth

    # ------------------------------------------------------------------
    # Data movement.
    # ------------------------------------------------------------------

    def accept_from(self, neighbor: int, item: InTransit, vc: int = 0) -> None:
        """Take one message arriving over the link from ``neighbor``.

        The *sending* router's ``forwarded`` counter is maintained by the
        fabric at the move; accepting counts only the hop itself.
        """
        if not self.can_accept_from(neighbor, vc):
            raise NetworkError(
                f"router {self.node}: link buffer from {neighbor} vc{vc} is full"
            )
        item.hops += 1
        self.in_buffers[(neighbor, vc)].append(item)
        if self.lineage is not None:
            self.lineage.on_hop(
                item.message, self._clock(), item.hops, self.node, vc, neighbor
            )
        if self.tracer is not None:
            self.tracer.emit(
                self._clock(),
                HOP,
                self.node,
                src=neighbor,
                dest=item.message.destination,
                hops=item.hops,
            )

    def inject(self, item: InTransit) -> None:
        if not self.can_inject():
            raise NetworkError(f"router {self.node}: injection buffer full")
        self.injection.append(item)
        self.stats.injected += 1
        if self.lineage is not None:
            self.lineage.on_inject(item.message, self._clock(), self.node)
        if self.tracer is not None:
            self.tracer.emit(
                self._clock(),
                INJECT,
                self.node,
                dest=item.message.destination,
            )

    def pending_sources(self) -> List[SourceKey]:
        """Buffer keys with a message ready, in service order.

        Link channels are served neighbor-major, channel-minor, before
        the injection buffer (``None``) so network traffic drains ahead
        of new load — the usual anti-livelock priority.
        """
        order: List[SourceKey] = [
            key for key, buffer in self.in_buffers.items() if buffer
        ]
        if self.injection:
            order.append(None)
        return order

    def _buffer(self, source: SourceKey) -> Deque[InTransit]:
        if source is None:
            return self.injection
        if isinstance(source, int):
            source = (source, 0)
        return self.in_buffers[self._buffer_key(*source)]

    def peek(self, source: SourceKey) -> InTransit:
        buffer = self._buffer(source)
        if not buffer:
            raise NetworkError(f"router {self.node}: buffer {source} is empty")
        return buffer[0]

    def take(self, source: SourceKey) -> InTransit:
        buffer = self._buffer(source)
        if not buffer:
            raise NetworkError(f"router {self.node}: buffer {source} is empty")
        return buffer.popleft()

    @property
    def occupancy(self) -> int:
        return len(self.injection) + sum(len(b) for b in self.in_buffers.values())

    def is_idle(self) -> bool:
        return self.occupancy == 0
