"""Synthetic traffic: the classic patterns, Bernoulli-injected.

The gem5/Garnet sweeps the evaluation mirrors stress a network with
*synthetic* traffic — address-permutation patterns that concentrate load
in characteristic ways — rather than application messages, because a
pattern's saturation point is a property of the topology × routing
design alone.  The five classics (Dally & Towles' taxonomy) are:

* ``uniform`` — every injection draws a destination uniformly at random;
* ``bit-rotation`` — destination is the source's address rotated right
  one bit;
* ``shuffle`` — rotated left one bit (the perfect-shuffle permutation);
* ``transpose`` — the address halves swapped (matrix transpose: all
  traffic crosses the diagonal, the worst case for dimension-order);
* ``hotspot`` — a fraction of injections target one hot node, the rest
  uniform (the Section 2.1.1 congestion story as an open-loop load).

Injection is Bernoulli: each node, each cycle, offers a message with
probability ``rate`` (the injection-rate knob the sweep drives to
saturation).  All randomness flows from one seeded RNG, so a run is a
pure function of ``(pattern, rate, seed)`` — the determinism regression
pins this.

:class:`TrafficSource` and :class:`TrafficSink` are
:class:`~repro.sim.component.SimComponent`\\ s; :func:`run_traffic`
assembles source → fabric → sink under a
:class:`~repro.sim.kernel.SimKernel` and measures accepted throughput
and delivery latency over a post-warmup window.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.errors import NetworkError, RoutingError
from repro.network.fabric import Fabric
from repro.network.routing import RoutingPolicy
from repro.network.topology import Topology, build_topology
from repro.nic.interface import NetworkInterface, SendResult
from repro.nic.messages import pack_destination
from repro.sim import SimComponent, SimKernel

#: Message type used by all synthetic traffic.
TRAFFIC_MTYPE = 3

#: Pattern names accepted by :func:`pattern_destination`.
PATTERNS = ("uniform", "bit-rotation", "shuffle", "transpose", "hotspot")

#: Fraction of ``hotspot`` injections aimed at the hot node.
HOTSPOT_FRACTION = 0.2


def _address_bits(n_nodes: int, pattern: str) -> int:
    bits = n_nodes.bit_length() - 1
    if n_nodes < 2 or (1 << bits) != n_nodes:
        raise RoutingError(
            f"{pattern} traffic needs a power-of-two node count, got {n_nodes}"
        )
    return bits


def pattern_destination(
    pattern: str,
    node: int,
    n_nodes: int,
    rng: random.Random,
    hot_node: int = 0,
) -> int:
    """The destination one injection at ``node`` targets.

    Permutation patterns (bit-rotation, shuffle, transpose) are pure
    functions of the source address and need a power-of-two node count;
    ``uniform`` and ``hotspot`` draw from ``rng``.  May return ``node``
    itself (a self-addressed message still exercises the ejection path).
    """
    if pattern == "uniform":
        return rng.randrange(n_nodes)
    if pattern == "hotspot":
        if rng.random() < HOTSPOT_FRACTION:
            return hot_node
        return rng.randrange(n_nodes)
    if pattern == "bit-rotation":
        bits = _address_bits(n_nodes, pattern)
        return (node >> 1) | ((node & 1) << (bits - 1))
    if pattern == "shuffle":
        bits = _address_bits(n_nodes, pattern)
        return ((node << 1) | (node >> (bits - 1))) & (n_nodes - 1)
    if pattern == "transpose":
        bits = _address_bits(n_nodes, pattern)
        if bits % 2:
            raise RoutingError(
                f"transpose traffic needs an even address width, got "
                f"{n_nodes} nodes ({bits} bits)"
            )
        half = bits // 2
        return ((node >> half) | (node << half)) & (n_nodes - 1)
    raise RoutingError(
        f"unknown traffic pattern {pattern!r}; known: {', '.join(PATTERNS)}"
    )


class TrafficSource(SimComponent):
    """Bernoulli open-loop injector across every node.

    One component drives all nodes (a per-node component at 256 nodes
    would spend more time in the kernel scan than in the work).  Each
    cycle up to ``duration``, each node offers a message with
    probability ``rate``; an offer whose SEND cannot be accepted (output
    queue full — the backpressure chain reaching the processor) counts
    as ``refused_offers`` and is dropped, keeping the load open-loop so
    post-saturation behaviour is measurable instead of self-throttling.
    """

    name = "traffic-source"

    def __init__(
        self,
        fabric: Fabric,
        pattern: str,
        rate: float,
        seed: int,
        duration: int,
        hot_node: int = 0,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise NetworkError(f"injection rate must be in [0, 1], got {rate}")
        if pattern not in PATTERNS:
            raise RoutingError(
                f"unknown traffic pattern {pattern!r}; known: {', '.join(PATTERNS)}"
            )
        self.fabric = fabric
        self.pattern = pattern
        self.rate = rate
        self.rng = random.Random(seed)
        self.duration = duration
        self.hot_node = hot_node
        self.offered = 0
        self.accepted = 0
        self.refused_offers = 0
        self.handle = None  # bound by run_traffic after registration

    def tick(self, cycle: int) -> None:
        if cycle > self.duration:
            if self.handle is not None:
                self.handle.sleep()
            return
        fabric = self.fabric
        n = fabric.topology.n_nodes
        rate = self.rate
        rng = self.rng
        for node in range(n):
            if rng.random() >= rate:
                continue
            destination = pattern_destination(
                self.pattern, node, n, rng, self.hot_node
            )
            self.offered += 1
            ni = fabric.interfaces[node]
            ni.write_output(0, pack_destination(destination))
            ni.write_output(1, cycle & 0xFFFF)
            if ni.send(TRAFFIC_MTYPE) is SendResult.SENT:
                self.accepted += 1
            else:
                self.refused_offers += 1

    def quiescent(self) -> bool:
        return True  # open-loop: the source never holds the run open

    def snapshot(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "refused_offers": self.refused_offers,
        }


class TrafficSink(SimComponent):
    """Ideal consumers: every node drains its input queue every cycle.

    The synthetic sweep measures the *network*, so the endpoints must
    not be the bottleneck — each interface retires every waiting message
    each cycle, the NEXT-until-empty service loop of an infinitely fast
    processor.
    """

    name = "traffic-sink"

    def __init__(self, fabric: Fabric) -> None:
        self.fabric = fabric
        self.retired = 0

    def tick(self, cycle: int) -> None:
        retired = self.retired
        for ni in self.fabric.interfaces:
            while ni.msg_valid:
                ni.next()
                retired += 1
        self.retired = retired

    def quiescent(self) -> bool:
        return all(
            ni.input_queue.is_empty and not ni.msg_valid
            for ni in self.fabric.interfaces
        )

    def snapshot(self) -> Dict[str, object]:
        return {"retired": self.retired}


def censored_ages(fabric: Fabric, now: int) -> list:
    """Ages of every undelivered message still inside the machine at ``now``.

    Two places hold them: router buffers (the fabric stamped
    ``injected_at`` on entry) and interface output queues (not yet past
    the serialization timer — their injection cycle is the low 16 bits
    of word 1, stamped by :class:`TrafficSource`).  Each age is a *lower
    bound* on the message's eventual latency, which is exactly what a
    censored sample contributes.
    """
    ages = []
    for router in fabric.routers:
        for buffer in router.in_buffers.values():
            for item in buffer:
                ages.append(now - item.injected_at)
    for ni in fabric.interfaces:
        for message in ni.output_queue:
            stamped = message.word(1) & 0xFFFF
            ages.append(max(0, now - stamped))
    return ages


def run_traffic(
    topology: Topology,
    routing: RoutingPolicy,
    pattern: str,
    rate: float,
    seed: int = 0,
    warmup_cycles: int = 200,
    measure_cycles: int = 600,
    drain_cycles: int = 2_000,
    link_buffer_depth: int = 4,
    serialization_cycles: int = 1,
    interface_capacity: int = 8,
) -> Dict[str, object]:
    """One synthetic-traffic run; returns a plain (picklable) payload.

    Injection runs for ``warmup_cycles + measure_cycles``; throughput
    and latency are measured over the post-warmup window only (deltas of
    the fabric counters), so ramp-up transients never pollute the
    curve.  After injection stops the fabric is given ``drain_cycles``
    to deliver what it holds.  A failure to drain is a *measurement*,
    not an error — a policy without deadlock avoidance is expected to
    deadlock past saturation — so the payload records ``drained`` and,
    when the detector finds one, the buffer-wait cycle under
    ``deadlock`` (the window's throughput and latency stay valid: they
    were measured before the drain began).

    The payload's headline numbers:

    * ``offered_rate`` — the Bernoulli knob, messages/node/cycle;
    * ``accepted_rate`` — SENDs the interfaces accepted, per node-cycle,
      over the measurement window (accepted < offered means the network
      is saturated and backpressure reached the processors);
    * ``throughput`` — deliveries per node-cycle over the window;
    * ``mean_latency`` — injection-to-ejection cycles, averaged over the
      window's deliveries;
    * ``censored`` / ``censored_mean_age`` / ``mean_latency_lower_bound``
      — messages still undelivered when the window closed, counted as
      right-censored latency samples (each contributes its age so far).
      Near saturation ``mean_latency`` alone silently drops exactly the
      slowest traffic; the lower bound folds the censored mass back in.
    """
    fabric = Fabric(
        topology,
        [
            NetworkInterface(
                node=node,
                input_capacity=interface_capacity,
                output_capacity=interface_capacity,
            )
            for node in range(topology.n_nodes)
        ],
        link_buffer_depth=link_buffer_depth,
        serialization_cycles=serialization_cycles,
        routing=routing,
    )
    duration = warmup_cycles + measure_cycles
    source = TrafficSource(fabric, pattern, rate, seed, duration)
    sink = TrafficSink(fabric)
    kernel = SimKernel()
    source.handle = kernel.register(source)
    kernel.register(fabric)
    kernel.register(sink)

    def until(cycle_bound: int):
        return lambda: kernel.cycle >= cycle_bound

    kernel.run(until=until(warmup_cycles), max_cycles=warmup_cycles + 1)
    at_warmup = (
        source.offered,
        source.accepted,
        fabric.stats.delivered,
        fabric.stats.total_latency,
        fabric.stats.total_hops,
    )
    kernel.run(until=until(duration), max_cycles=measure_cycles + 1)
    offered = source.offered - at_warmup[0]
    accepted = source.accepted - at_warmup[1]
    delivered = fabric.stats.delivered - at_warmup[2]
    latency = fabric.stats.total_latency - at_warmup[3]
    hops = fabric.stats.total_hops - at_warmup[4]
    # Messages still in flight when the window closes never reach the
    # latency average — near saturation that silently discards exactly
    # the slowest traffic and underreports latency.  Snapshot them here,
    # before the drain (which delivers or strands them), as right-censored
    # samples: each age is a lower bound on that message's latency.
    censored = censored_ages(fabric, kernel.cycle)
    censored_age_total = sum(censored)
    # Injection is over; let the fabric drain.  A stuck drain — e.g. an
    # adaptive policy deadlocking past saturation — is recorded in the
    # payload, cycle named, rather than raised: the sweep wants the
    # failure boundary on the curve, not a crashed grid.
    try:
        kernel.run(
            max_cycles=drain_cycles, stall_error=NetworkError, label="drain"
        )
        drained = True
        deadlock = None
    except NetworkError:
        drained = False
        found = fabric.find_deadlock()
        deadlock = " -> ".join(found) if found else None

    n = topology.n_nodes
    node_cycles = n * measure_cycles
    return {
        "topology": topology.describe(),
        "routing": routing.name,
        "pattern": pattern,
        "n_nodes": n,
        "seed": seed,
        "warmup_cycles": warmup_cycles,
        "measure_cycles": measure_cycles,
        "offered_rate": rate,
        "offered": offered,
        "accepted": accepted,
        "accepted_rate": round(accepted / node_cycles, 6),
        "delivered": delivered,
        "throughput": round(delivered / node_cycles, 6),
        "mean_latency": round(latency / delivered, 3) if delivered else 0.0,
        "censored": len(censored),
        "censored_mean_age": (
            round(censored_age_total / len(censored), 3) if censored else 0.0
        ),
        "mean_latency_lower_bound": (
            round(
                (latency + censored_age_total) / (delivered + len(censored)), 3
            )
            if delivered + len(censored)
            else 0.0
        ),
        "mean_hops": round(hops / delivered, 3) if delivered else 0.0,
        "total_delivered": fabric.stats.delivered,
        "total_retired": sink.retired,
        "drain_cycles": kernel.cycle - duration,
        "drained": drained,
        "deadlock": deadlock,
    }


def run_traffic_named(
    topology_kind: str,
    n_nodes: int,
    routing: RoutingPolicy,
    pattern: str,
    rate: float,
    **kwargs,
) -> Dict[str, object]:
    """:func:`run_traffic` with the topology built from ``(kind, nodes)``."""
    return run_traffic(
        build_topology(topology_kind, n_nodes), routing, pattern, rate, **kwargs
    )


def saturation_throughput(curve) -> float:
    """The saturation point of one latency-vs-load curve: the largest
    measured throughput across its injection rates."""
    return max((point["throughput"] for point in curve), default=0.0)
