"""Interconnection-network substrate: topologies, routers, the fabric."""

from repro.network.fabric import Fabric, FabricStats
from repro.network.router import InTransit, Router
from repro.network.topology import Hypercube, Mesh2D, Topology, Torus2D

__all__ = [
    "Fabric",
    "FabricStats",
    "Hypercube",
    "InTransit",
    "Mesh2D",
    "Router",
    "Topology",
    "Torus2D",
]
