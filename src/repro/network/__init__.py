"""Interconnection-network substrate: topologies, routing, routers, fabric."""

from repro.network.fabric import Fabric, FabricStats
from repro.network.router import InTransit, Router
from repro.network.routing import (
    POLICY_NAMES,
    AdaptiveRandom,
    DimensionOrder,
    EscapeVC,
    RoutingPolicy,
    make_policy,
)
from repro.network.topology import (
    Hypercube,
    Mesh2D,
    Topology,
    Torus2D,
    build_topology,
)

__all__ = [
    "AdaptiveRandom",
    "DimensionOrder",
    "EscapeVC",
    "Fabric",
    "FabricStats",
    "Hypercube",
    "InTransit",
    "Mesh2D",
    "POLICY_NAMES",
    "Router",
    "RoutingPolicy",
    "Topology",
    "Torus2D",
    "build_topology",
    "make_policy",
]
