"""Interconnection topologies and deterministic routing.

The paper's machines (NCUBE, iPSC/2, CM-5, J-Machine relatives) span
hypercubes, fat trees, and meshes; the architecture itself only assumes
*some* network that delivers five-word messages and exerts backpressure.
This module provides the three classic direct topologies with deterministic
minimal routing so the fabric's behaviour is reproducible:

* :class:`Mesh2D` — k × m mesh, dimension-order (X then Y) routing;
* :class:`Torus2D` — with wraparound links, still dimension-order;
* :class:`Hypercube` — dimension-order on the lowest differing bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import RoutingError


class Topology:
    """Abstract topology: node count, links, and a deterministic next hop."""

    n_nodes: int

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Nodes one link away from ``node``."""
        raise NotImplementedError

    def next_hop(self, node: int, destination: int) -> int:
        """The deterministic next node on the route to ``destination``."""
        raise NotImplementedError

    def check_node(self, node: int) -> int:
        if node < 0 or node >= self.n_nodes:
            raise RoutingError(
                f"node {node} outside topology of {self.n_nodes} nodes"
            )
        return node

    def route(self, source: int, destination: int, max_hops: int = 10_000) -> List[int]:
        """The full deterministic route, endpoints included."""
        self.check_node(source)
        self.check_node(destination)
        path = [source]
        current = source
        while current != destination:
            current = self.next_hop(current, destination)
            path.append(current)
            if len(path) > max_hops:
                raise RoutingError(
                    f"route {source}->{destination} exceeded {max_hops} hops"
                )
        return path

    def distance(self, source: int, destination: int) -> int:
        """Hop count of the deterministic route."""
        return len(self.route(source, destination)) - 1

    def links(self) -> Iterable[Tuple[int, int]]:
        """All directed links as (from, to) pairs."""
        for node in range(self.n_nodes):
            for neighbor in self.neighbors(node):
                yield node, neighbor


@dataclass
class Mesh2D(Topology):
    """A width × height mesh with dimension-order (X-then-Y) routing.

    Dimension-order routing is deadlock-free on a mesh, which keeps the
    flow-control experiments honest: any observed clogging comes from
    endpoint queues, not routing cycles.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise RoutingError("mesh dimensions must be at least 1x1")
        self.n_nodes = self.width * self.height

    def coordinates(self, node: int) -> Tuple[int, int]:
        self.check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise RoutingError(f"({x}, {y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def neighbors(self, node: int) -> Tuple[int, ...]:
        x, y = self.coordinates(node)
        result = []
        if x > 0:
            result.append(self.node_at(x - 1, y))
        if x < self.width - 1:
            result.append(self.node_at(x + 1, y))
        if y > 0:
            result.append(self.node_at(x, y - 1))
        if y < self.height - 1:
            result.append(self.node_at(x, y + 1))
        return tuple(result)

    def next_hop(self, node: int, destination: int) -> int:
        x, y = self.coordinates(node)
        dx, dy = self.coordinates(self.check_node(destination))
        if x < dx:
            return self.node_at(x + 1, y)
        if x > dx:
            return self.node_at(x - 1, y)
        if y < dy:
            return self.node_at(x, y + 1)
        if y > dy:
            return self.node_at(x, y - 1)
        raise RoutingError(f"next_hop called at the destination {node}")


@dataclass
class Torus2D(Mesh2D):
    """A width × height torus: the mesh plus wraparound links."""

    def neighbors(self, node: int) -> Tuple[int, ...]:
        x, y = self.coordinates(node)
        return tuple(
            {
                self.node_at((x - 1) % self.width, y),
                self.node_at((x + 1) % self.width, y),
                self.node_at(x, (y - 1) % self.height),
                self.node_at(x, (y + 1) % self.height),
            }
            - {node}
        )

    @staticmethod
    def _step_toward(position: int, target: int, size: int) -> int:
        forward = (target - position) % size
        backward = (position - target) % size
        if forward == 0:
            return position
        if forward <= backward:
            return (position + 1) % size
        return (position - 1) % size

    def next_hop(self, node: int, destination: int) -> int:
        x, y = self.coordinates(node)
        dx, dy = self.coordinates(self.check_node(destination))
        nx = self._step_toward(x, dx, self.width)
        if nx != x:
            return self.node_at(nx, y)
        ny = self._step_toward(y, dy, self.height)
        if ny != y:
            return self.node_at(x, ny)
        raise RoutingError(f"next_hop called at the destination {node}")


@dataclass
class Hypercube(Topology):
    """A 2^d-node hypercube, routing on the lowest differing dimension."""

    dimensions: int

    def __post_init__(self) -> None:
        if self.dimensions < 0 or self.dimensions > 16:
            raise RoutingError("hypercube dimensions must be in [0, 16]")
        self.n_nodes = 1 << self.dimensions

    def neighbors(self, node: int) -> Tuple[int, ...]:
        self.check_node(node)
        return tuple(node ^ (1 << bit) for bit in range(self.dimensions))

    def next_hop(self, node: int, destination: int) -> int:
        self.check_node(node)
        diff = node ^ self.check_node(destination)
        if diff == 0:
            raise RoutingError(f"next_hop called at the destination {node}")
        lowest = diff & -diff
        return node ^ lowest
