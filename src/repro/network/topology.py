"""Interconnection topologies: structure only.

The paper's machines (NCUBE, iPSC/2, CM-5, J-Machine relatives) span
hypercubes, fat trees, and meshes; the architecture itself only assumes
*some* network that delivers five-word messages and exerts backpressure.
A :class:`Topology` here describes **structure** — node count, links,
neighbors, closed-form distance and diameter; *how* a message moves
through that structure is a :class:`~repro.network.routing.RoutingPolicy`
(dimension-order, minimal-adaptive, escape-channel), chosen per fabric.

Three classic direct topologies are provided:

* :class:`Mesh2D` — k × m mesh, Manhattan distance;
* :class:`Torus2D` — the mesh plus wraparound links, wrap-aware distance;
* :class:`Hypercube` — 2^d nodes, Hamming distance.

``next_hop`` / ``route`` remain as thin conveniences that delegate to
the canonical :class:`~repro.network.routing.DimensionOrder` policy, so
existing callers and tests read the same as before the routing layer
became pluggable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import RoutingError


class Topology:
    """Abstract structure: node count, neighbors, distance, diameter."""

    n_nodes: int

    def describe(self) -> str:
        """Human-readable identity used in diagnostics, e.g. ``Mesh2D 8x8``."""
        return type(self).__name__

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Nodes one link away from ``node``."""
        raise NotImplementedError

    def distance(self, source: int, destination: int) -> int:
        """Minimal hop count between two nodes, in closed form."""
        raise NotImplementedError

    def diameter(self) -> int:
        """The largest minimal hop count between any node pair."""
        raise NotImplementedError

    def check_node(self, node: int) -> int:
        if node < 0 or node >= self.n_nodes:
            raise RoutingError(
                f"node {node} outside {self.describe()} of {self.n_nodes} nodes"
            )
        return node

    def next_hop(self, node: int, destination: int) -> int:
        """The dimension-order next node (legacy convenience).

        Pluggable policies live in :mod:`repro.network.routing`; this
        delegates to the canonical deterministic one.
        """
        return _dimension_order().next_hop(self, node, destination)

    def route(
        self, source: int, destination: int, max_hops: Optional[int] = None
    ) -> List[int]:
        """The full dimension-order route, endpoints included.

        ``max_hops`` defaults to the topology's diameter — dimension-order
        routes are minimal, so a longer walk is a routing bug, reported
        with the topology named rather than after 10,000 silent hops.
        """
        self.check_node(source)
        self.check_node(destination)
        if max_hops is None:
            max_hops = self.diameter()
        policy = _dimension_order()
        path = [source]
        current = source
        while current != destination:
            current = policy.next_hop(self, current, destination)
            path.append(current)
            if len(path) - 1 > max_hops:
                raise RoutingError(
                    f"route {source}->{destination} exceeded {max_hops} hops "
                    f"in {self.describe()}"
                )
        return path

    def links(self) -> Iterable[Tuple[int, int]]:
        """All directed links as (from, to) pairs."""
        for node in range(self.n_nodes):
            for neighbor in self.neighbors(node):
                yield node, neighbor


def _dimension_order():
    """The shared DimensionOrder policy (lazy: routing imports topology)."""
    from repro.network.routing import DimensionOrder

    global _DIMENSION_ORDER
    if _DIMENSION_ORDER is None:
        _DIMENSION_ORDER = DimensionOrder()
    return _DIMENSION_ORDER


_DIMENSION_ORDER = None


@dataclass
class Mesh2D(Topology):
    """A width × height mesh.

    Distance is Manhattan; the canonical deterministic policy routes
    X-then-Y, which is deadlock-free on a mesh — that keeps the
    flow-control experiments honest: any observed clogging comes from
    endpoint queues, not routing cycles.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise RoutingError("mesh dimensions must be at least 1x1")
        self.n_nodes = self.width * self.height

    def describe(self) -> str:
        return f"{type(self).__name__} {self.width}x{self.height}"

    def coordinates(self, node: int) -> Tuple[int, int]:
        self.check_node(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise RoutingError(
                f"({x}, {y}) outside {self.width}x{self.height} mesh"
            )
        return y * self.width + x

    def neighbors(self, node: int) -> Tuple[int, ...]:
        x, y = self.coordinates(node)
        result = []
        if x > 0:
            result.append(self.node_at(x - 1, y))
        if x < self.width - 1:
            result.append(self.node_at(x + 1, y))
        if y > 0:
            result.append(self.node_at(x, y - 1))
        if y < self.height - 1:
            result.append(self.node_at(x, y + 1))
        return tuple(result)

    def distance(self, source: int, destination: int) -> int:
        x, y = self.coordinates(source)
        dx, dy = self.coordinates(destination)
        return abs(x - dx) + abs(y - dy)

    def diameter(self) -> int:
        return (self.width - 1) + (self.height - 1)


@dataclass
class Torus2D(Mesh2D):
    """A width × height torus: the mesh plus wraparound links."""

    def neighbors(self, node: int) -> Tuple[int, ...]:
        x, y = self.coordinates(node)
        return tuple(
            {
                self.node_at((x - 1) % self.width, y),
                self.node_at((x + 1) % self.width, y),
                self.node_at(x, (y - 1) % self.height),
                self.node_at(x, (y + 1) % self.height),
            }
            - {node}
        )

    @staticmethod
    def _axis_distance(a: int, b: int, size: int) -> int:
        """Wrap-aware separation along one axis."""
        span = abs(a - b)
        return min(span, size - span)

    def distance(self, source: int, destination: int) -> int:
        x, y = self.coordinates(source)
        dx, dy = self.coordinates(destination)
        return self._axis_distance(x, dx, self.width) + self._axis_distance(
            y, dy, self.height
        )

    def diameter(self) -> int:
        return self.width // 2 + self.height // 2


@dataclass
class Hypercube(Topology):
    """A 2^d-node hypercube; distance is the Hamming distance."""

    dimensions: int

    def __post_init__(self) -> None:
        if self.dimensions < 0 or self.dimensions > 16:
            raise RoutingError("hypercube dimensions must be in [0, 16]")
        self.n_nodes = 1 << self.dimensions

    def describe(self) -> str:
        return f"{type(self).__name__} d={self.dimensions}"

    @classmethod
    def from_nodes(cls, n_nodes: int) -> "Hypercube":
        """The hypercube with exactly ``n_nodes`` nodes.

        Rejects non-powers-of-two by name, so a sweep asking for a
        65-node hypercube fails diagnosably instead of silently rounding.
        """
        if n_nodes < 1 or n_nodes & (n_nodes - 1):
            raise RoutingError(
                f"Hypercube needs a power-of-two node count, got {n_nodes}"
            )
        return cls(n_nodes.bit_length() - 1)

    def neighbors(self, node: int) -> Tuple[int, ...]:
        self.check_node(node)
        return tuple(node ^ (1 << bit) for bit in range(self.dimensions))

    def distance(self, source: int, destination: int) -> int:
        self.check_node(source)
        self.check_node(destination)
        return (source ^ destination).bit_count()

    def diameter(self) -> int:
        return self.dimensions


def build_topology(kind: str, n_nodes: int) -> Topology:
    """Build a topology of ``kind`` ("mesh" / "torus" / "hypercube") with
    ``n_nodes`` nodes.

    Mesh and torus are kept square (the sweep's 64 → 8×8, 256 → 16×16),
    so a non-square count is rejected with the offending number named;
    hypercubes reject non-powers-of-two the same way.
    """
    if kind in ("mesh", "torus"):
        side = round(n_nodes**0.5)
        if side * side != n_nodes or side < 1:
            raise RoutingError(
                f"{kind} sweep needs a square node count, got {n_nodes}"
            )
        return Mesh2D(side, side) if kind == "mesh" else Torus2D(side, side)
    if kind == "hypercube":
        return Hypercube.from_nodes(n_nodes)
    raise RoutingError(
        f"unknown topology kind {kind!r}; known: mesh, torus, hypercube"
    )
