"""The whole-machine fabric: interfaces wired through routers.

The fabric advances in cycles.  Each cycle, every router moves at most one
message per output (link or ejection port), always subject to the next
buffer's credit; every interface's output queue feeds its router's
injection buffer, and ejected messages are delivered through
:meth:`NetworkInterface.deliver` — which refuses when the input queue is
full, pushing the backpressure chain the paper describes in Section 2.1.1:

    "its input message queue backs up into the network.  As the network
    becomes clogged, processors can no longer transmit messages and
    eventually their output queues fill up."

Service decisions *and credits* are snapshotted at the start of the
cycle: a buffer slot freed by a move earlier in the same cycle is not
reusable until the next cycle, so drain order never depends on the
iteration order of the routers (single-cycle credit invariant).

Latency model: one hop per cycle per message, plus a configurable
per-message serialization latency at injection (defaulting to the six
flit times of the RTL model).  The serialization timer is keyed to the
specific head-of-queue message it was started for; a new head (after a
drain, clear, or requeue) always serialises from scratch.  The
evaluation's instruction counts never depend on fabric latency (the
paper's simulator "did not model ... any network latency"), but the
examples and the flow-control tests exercise it.

Observability is opt-in: pass ``tracer=`` / ``metrics=`` to record
structured events (:mod:`repro.obs.tracer`) and per-cycle time series
(:mod:`repro.obs.metrics`); with both left ``None`` the cycle loop pays
only a pair of identity checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.router import InTransit, Router
from repro.network.topology import Topology
from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message
from repro.nic.rtl import FLITS_PER_MESSAGE
from repro.obs.metrics import MetricsRecorder
from repro.obs.tracer import BLOCK, EJECT, Tracer
from repro.sim.kernel import SimKernel


@dataclass
class FabricStats:
    """Whole-fabric counters; each counts exactly one thing.

    * ``cycles`` — steps taken.
    * ``delivered`` — messages ejected into an interface and accepted
      (queued or diverted); equals the sum of router ``ejected`` counts.
    * ``total_hops`` / ``total_latency`` — accumulated over delivered
      messages only.
    * ``deliveries_refused`` — ejection *attempts* refused because the
      destination input queue was full at the start of the cycle: one
      per refused head message per cycle, matching the sum of
      :attr:`InterfaceStats.refused` exactly (a message refused for
      five cycles counts five attempts in both places).
    """

    cycles: int = 0
    delivered: int = 0
    total_hops: int = 0
    total_latency: int = 0
    deliveries_refused: int = 0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0


class Fabric:
    """Routers plus interfaces over a :class:`~repro.network.topology.Topology`."""

    def __init__(
        self,
        topology: Topology,
        interfaces: Optional[Sequence[NetworkInterface]] = None,
        link_buffer_depth: int = 4,
        serialization_cycles: int = FLITS_PER_MESSAGE,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRecorder] = None,
    ) -> None:
        self.topology = topology
        if interfaces is None:
            interfaces = [NetworkInterface(node=n) for n in range(topology.n_nodes)]
        if len(interfaces) != topology.n_nodes:
            raise NetworkError(
                f"{len(interfaces)} interfaces for {topology.n_nodes} nodes"
            )
        self.interfaces: List[NetworkInterface] = list(interfaces)
        self.routers = [
            Router(node, topology.neighbors(node), link_buffer_depth)
            for node in range(topology.n_nodes)
        ]
        self.serialization_cycles = max(1, serialization_cycles)
        # Per-node serialization state: the head message the countdown was
        # started for, plus the cycles it still occupies the channel.
        self._injection_timers: Dict[int, Tuple[Message, int]] = {}
        self.stats = FabricStats()
        self.tracer = tracer
        self.metrics = metrics
        self._n_links = sum(len(r.in_buffers) for r in self.routers)
        self._almost_full_state: Dict[Tuple[int, str], bool] = {}
        if tracer is not None:
            clock = lambda: self.stats.cycles  # noqa: E731 - shared cycle clock
            for router in self.routers:
                router.attach_tracer(tracer, clock)
            for interface in self.interfaces:
                interface.attach_tracer(tracer, clock)

    def interface(self, node: int) -> NetworkInterface:
        return self.interfaces[self.topology.check_node(node)]

    # ------------------------------------------------------------------
    # Cycle advance.
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Advance one cycle; returns the number of deliveries made."""
        self.stats.cycles += 1
        delivered, link_moves = self._move_messages()
        self._inject_from_interfaces()
        if self.metrics is not None:
            self._sample_metrics(delivered, link_moves)
        return delivered

    def _move_messages(self) -> Tuple[int, int]:
        delivered = 0
        link_moves = 0
        tracer = self.tracer
        # Snapshot service decisions AND credits before moving anything,
        # so a message cannot traverse two links in one cycle and a
        # buffer slot freed by an earlier move this cycle cannot be
        # consumed by a later one (drain order must not depend on router
        # iteration order).
        moves = []
        link_credit: Dict[Tuple[int, int], bool] = {}
        eject_credit: Dict[int, bool] = {}
        for router in self.routers:
            outputs_used = set()
            for source in router.pending_sources():
                item = router.peek(source)
                destination = item.message.destination
                if destination == router.node:
                    port = ("eject", router.node)
                else:
                    port = ("link", self.topology.next_hop(router.node, destination))
                if port in outputs_used:
                    continue
                outputs_used.add(port)
                moves.append((router, source, port))
                if port[0] == "link":
                    key = (port[1], router.node)
                    link_credit[key] = self.routers[port[1]].can_accept_from(
                        router.node
                    )
                else:
                    eject_credit[router.node] = self.interfaces[
                        router.node
                    ].can_accept()
        for router, source, port in moves:
            kind, target = port
            item = router.peek(source)
            if kind == "eject":
                interface = self.interfaces[router.node]
                message = item.message
                # Diverted messages (privileged / PIN mismatch) never
                # consume an input-queue slot, so they bypass the credit
                # snapshot exactly as they bypass the queue itself.
                if eject_credit[router.node] or interface.would_divert(message):
                    accepted = interface.deliver(message)
                else:
                    accepted = interface.refuse_delivery(message)
                if accepted:
                    router.take(source)
                    router.stats.ejected += 1
                    delivered += 1
                    self.stats.delivered += 1
                    self.stats.total_hops += item.hops
                    self.stats.total_latency += self.stats.cycles - item.injected_at
                    if tracer is not None:
                        tracer.emit(
                            self.stats.cycles,
                            EJECT,
                            router.node,
                            hops=item.hops,
                            latency=self.stats.cycles - item.injected_at,
                        )
                else:
                    self.stats.deliveries_refused += 1
                    router.stats.blocked_moves += 1
                    if tracer is not None:
                        tracer.emit(
                            self.stats.cycles, BLOCK, router.node, port="eject"
                        )
            else:
                next_router = self.routers[target]
                key = (target, router.node)
                if link_credit[key]:
                    # One credit per link per cycle (only this router
                    # feeds the (target, self) buffer, but be explicit).
                    link_credit[key] = False
                    next_router.accept_from(router.node, router.take(source))
                    router.stats.forwarded += 1
                    link_moves += 1
                else:
                    router.stats.blocked_moves += 1
                    if tracer is not None:
                        tracer.emit(
                            self.stats.cycles,
                            BLOCK,
                            router.node,
                            port="link",
                            to=target,
                        )
        return delivered, link_moves

    def _inject_from_interfaces(self) -> None:
        for node, interface in enumerate(self.interfaces):
            router = self.routers[node]
            head = interface.peek_outgoing()
            if head is None:
                self._injection_timers.pop(node, None)
                continue
            if not router.can_inject():
                continue
            # Model flit-serial injection: a message occupies the channel
            # for serialization_cycles before entering the router.  The
            # countdown belongs to the specific message it was started
            # for: a different head (after a drain/clear between steps)
            # must serialise from the beginning, never inherit the
            # previous head's mostly-elapsed timer.
            entry = self._injection_timers.get(node)
            if entry is None or entry[0] is not head:
                remaining = self.serialization_cycles
            else:
                remaining = entry[1]
            remaining -= 1
            if remaining > 0:
                self._injection_timers[node] = (head, remaining)
                continue
            self._injection_timers.pop(node, None)
            message = interface.transmit()
            assert message is head
            router.inject(InTransit(message, injected_at=self.stats.cycles))

    def _sample_metrics(self, delivered: int, link_moves: int) -> None:
        """Record this cycle's time-series samples and threshold edges."""
        metrics = self.metrics
        cycle = self.stats.cycles
        input_depth = 0
        output_depth = 0
        for interface in self.interfaces:
            input_depth += interface.input_queue.depth
            output_depth += interface.output_queue.depth
        metrics.sample("in_flight", cycle, self.in_flight())
        metrics.sample("input_queue_depth", cycle, input_depth)
        metrics.sample("output_queue_depth", cycle, output_depth)
        metrics.sample("deliveries", cycle, delivered)
        metrics.sample(
            "link_utilization",
            cycle,
            link_moves / self._n_links if self._n_links else 0.0,
        )
        state = self._almost_full_state
        for interface in self.interfaces:
            for queue_name, queue in (
                ("iq", interface.input_queue),
                ("oq", interface.output_queue),
            ):
                asserted = queue.almost_full
                key = (interface.node, queue_name)
                if asserted != state.get(key, False):
                    state[key] = asserted
                    metrics.crossing(cycle, interface.node, queue_name, asserted)

    # ------------------------------------------------------------------
    # Convenience drivers.
    # ------------------------------------------------------------------

    def in_flight(self) -> int:
        """Messages currently inside routers (not counting endpoint queues)."""
        return sum(router.occupancy for router in self.routers)

    def pending(self) -> int:
        """All undelivered traffic: router occupancy plus output queues."""
        return self.in_flight() + sum(
            ni.output_queue.depth for ni in self.interfaces
        )

    # The fabric is itself a kernel component (repro.sim): one tick is
    # one cycle, quiescence is "no undelivered traffic", and the stall
    # snapshot shows where messages are stuck.

    name = "fabric"

    def tick(self, cycle: int) -> None:
        self.step()

    def quiescent(self) -> bool:
        return self.pending() == 0

    def snapshot(self) -> Dict[str, object]:
        """Diagnostic state for the kernel's stall report."""
        return {
            "in_flight": self.in_flight(),
            "output_queues": {
                ni.node: ni.output_queue.depth
                for ni in self.interfaces
                if ni.output_queue.depth
            },
            "input_queues": {
                ni.node: ni.input_queue.depth
                for ni in self.interfaces
                if ni.input_queue.depth
            },
            "cycles": self.stats.cycles,
        }

    def run_until_quiescent(self, max_cycles: int = 100_000) -> int:
        """Step until no traffic remains in routers or output queues.

        Input queues may remain non-empty (that is endpoint work); raises
        with the kernel's diagnostic snapshot if the fabric cannot drain
        — e.g. receivers never accept — within ``max_cycles``.
        """
        kernel = SimKernel()
        kernel.register(self)
        return kernel.run(
            max_cycles=max_cycles, stall_error=NetworkError, label="fabric"
        ).cycles
