"""The whole-machine fabric: interfaces wired through routers.

The fabric advances in cycles.  Each cycle, every router moves at most one
message per output (link or ejection port), always subject to the next
buffer's credit; every interface's output queue feeds its router's
injection buffer, and ejected messages are delivered through
:meth:`NetworkInterface.deliver` — which refuses when the input queue is
full, pushing the backpressure chain the paper describes in Section 2.1.1:

    "its input message queue backs up into the network.  As the network
    becomes clogged, processors can no longer transmit messages and
    eventually their output queues fill up."

Latency model: one hop per cycle per message, plus a configurable
per-message serialization latency at injection (defaulting to the six
flit times of the RTL model).  The evaluation's instruction counts never
depend on fabric latency (the paper's simulator "did not model ... any
network latency"), but the examples and the flow-control tests exercise
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import NetworkError
from repro.network.router import InTransit, Router
from repro.network.topology import Topology
from repro.nic.interface import NetworkInterface
from repro.nic.rtl import FLITS_PER_MESSAGE


@dataclass
class FabricStats:
    cycles: int = 0
    delivered: int = 0
    total_hops: int = 0
    total_latency: int = 0
    deliveries_refused: int = 0

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0


class Fabric:
    """Routers plus interfaces over a :class:`~repro.network.topology.Topology`."""

    def __init__(
        self,
        topology: Topology,
        interfaces: Optional[Sequence[NetworkInterface]] = None,
        link_buffer_depth: int = 4,
        serialization_cycles: int = FLITS_PER_MESSAGE,
    ) -> None:
        self.topology = topology
        if interfaces is None:
            interfaces = [NetworkInterface(node=n) for n in range(topology.n_nodes)]
        if len(interfaces) != topology.n_nodes:
            raise NetworkError(
                f"{len(interfaces)} interfaces for {topology.n_nodes} nodes"
            )
        self.interfaces: List[NetworkInterface] = list(interfaces)
        self.routers = [
            Router(node, topology.neighbors(node), link_buffer_depth)
            for node in range(topology.n_nodes)
        ]
        self.serialization_cycles = max(1, serialization_cycles)
        self._injection_timers: Dict[int, int] = {}
        self.stats = FabricStats()

    def interface(self, node: int) -> NetworkInterface:
        return self.interfaces[self.topology.check_node(node)]

    # ------------------------------------------------------------------
    # Cycle advance.
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Advance one cycle; returns the number of deliveries made."""
        self.stats.cycles += 1
        delivered = self._move_messages()
        self._inject_from_interfaces()
        return delivered

    def _move_messages(self) -> int:
        delivered = 0
        # Snapshot service decisions before moving anything so a message
        # cannot traverse two links in one cycle.
        moves = []
        for router in self.routers:
            outputs_used = set()
            for source in router.pending_sources():
                item = router.peek(source)
                destination = item.message.destination
                if destination == router.node:
                    port = ("eject", router.node)
                else:
                    port = ("link", self.topology.next_hop(router.node, destination))
                if port in outputs_used:
                    continue
                outputs_used.add(port)
                moves.append((router, source, port))
        for router, source, port in moves:
            kind, target = port
            item = router.peek(source)
            if kind == "eject":
                interface = self.interfaces[router.node]
                if interface.deliver(item.message):
                    router.take(source)
                    router.stats.ejected += 1
                    delivered += 1
                    self.stats.delivered += 1
                    self.stats.total_hops += item.hops
                    self.stats.total_latency += self.stats.cycles - item.injected_at
                else:
                    self.stats.deliveries_refused += 1
                    router.stats.blocked_cycles += 1
            else:
                next_router = self.routers[target]
                if next_router.can_accept_from(router.node):
                    next_router.accept_from(router.node, router.take(source))
                else:
                    router.stats.blocked_cycles += 1
        return delivered

    def _inject_from_interfaces(self) -> None:
        for node, interface in enumerate(self.interfaces):
            router = self.routers[node]
            if interface.peek_outgoing() is None:
                self._injection_timers.pop(node, None)
                continue
            if not router.can_inject():
                continue
            # Model flit-serial injection: a message occupies the channel
            # for serialization_cycles before entering the router.
            timer = self._injection_timers.get(node, self.serialization_cycles)
            timer -= 1
            if timer > 0:
                self._injection_timers[node] = timer
                continue
            self._injection_timers.pop(node, None)
            message = interface.transmit()
            assert message is not None
            router.inject(InTransit(message, injected_at=self.stats.cycles))

    # ------------------------------------------------------------------
    # Convenience drivers.
    # ------------------------------------------------------------------

    def in_flight(self) -> int:
        """Messages currently inside routers (not counting endpoint queues)."""
        return sum(router.occupancy for router in self.routers)

    def pending(self) -> int:
        """All undelivered traffic: router occupancy plus output queues."""
        return self.in_flight() + sum(
            ni.output_queue.depth for ni in self.interfaces
        )

    def run_until_quiescent(self, max_cycles: int = 100_000) -> int:
        """Step until no traffic remains in routers or output queues.

        Input queues may remain non-empty (that is endpoint work); raises
        if the fabric cannot drain — e.g. receivers never accept — within
        ``max_cycles``.
        """
        cycles = 0
        while self.pending():
            self.step()
            cycles += 1
            if cycles > max_cycles:
                raise NetworkError(
                    f"fabric failed to drain within {max_cycles} cycles "
                    f"({self.pending()} messages pending)"
                )
        return cycles
