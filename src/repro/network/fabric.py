"""The whole-machine fabric: interfaces wired through routers.

The fabric advances in cycles.  Each cycle, every router moves at most one
message per output (physical link or ejection port), always subject to the
next buffer's credit; every interface's output queue feeds its router's
injection buffer, and ejected messages are delivered through
:meth:`NetworkInterface.deliver` — which refuses when the input queue is
full, pushing the backpressure chain the paper describes in Section 2.1.1:

    "its input message queue backs up into the network.  As the network
    becomes clogged, processors can no longer transmit messages and
    eventually their output queues fill up."

*Which* link a message takes is the routing policy's decision
(:mod:`repro.network.routing`): for each head-of-buffer message the
policy returns an ordered tuple of ``(next node, virtual channel)``
candidates from the topology and the router's cycle-start congestion
view, and the output arbitration takes the first candidate whose
physical link is still free this cycle and whose downstream buffer has
credit.  A head with credit nowhere yields the physical link to any
other head that can actually move over it this cycle (virtual channels
must multiplex the link, or a blocked channel would starve an open one
— the escape-channel guarantee depends on this) and is charged one
blocked move on its preferred link only when no mover claimed it.  The
default :class:`DimensionOrder` policy emits exactly one candidate,
which reduces the arbitration to the pre-policy behaviour byte for
byte.

Service decisions *and credits* are snapshotted at the start of the
cycle: a buffer slot freed by a move earlier in the same cycle is not
reusable until the next cycle, so drain order never depends on the
iteration order of the routers (single-cycle credit invariant).

Latency model: one hop per cycle per message, plus a configurable
per-message serialization latency at injection (defaulting to the six
flit times of the RTL model).  The serialization timer is keyed to the
specific head-of-queue message it was started for; a new head (after a
drain, clear, or requeue) always serialises from scratch.  The
evaluation's instruction counts never depend on fabric latency (the
paper's simulator "did not model ... any network latency"), but the
examples and the flow-control tests exercise it.

Observability is opt-in: pass ``tracer=`` / ``metrics=`` to record
structured events (:mod:`repro.obs.tracer`) and per-cycle time series
(:mod:`repro.obs.metrics`); with both left ``None`` the cycle loop pays
only a pair of identity checks.

Deadlock is a first-class diagnostic: :meth:`Fabric.find_deadlock`
searches the buffer wait-for graph for a cycle of full buffers whose
head messages all wait on each other, and the fabric's kernel
``snapshot`` names that cycle — so a stalled
:meth:`run_until_quiescent` reports *which* buffers deadlocked, not just
that the run timed out.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.network.router import InTransit, Router, SourceKey
from repro.network.routing import DimensionOrder, RoutingPolicy
from repro.network.topology import Topology
from repro.nic.interface import NetworkInterface
from repro.nic.messages import Message
from repro.nic.rtl import FLITS_PER_MESSAGE
from repro.obs.metrics import MetricsRecorder
from repro.obs.tracer import BLOCK, EJECT, Tracer
from repro.sim.kernel import SimKernel


@dataclass
class FabricStats:
    """Whole-fabric counters; each counts exactly one thing.

    * ``cycles`` — steps taken.
    * ``delivered`` — messages ejected into an interface and accepted
      (queued or diverted); equals the sum of router ``ejected`` counts.
    * ``total_hops`` / ``total_latency`` — accumulated over delivered
      messages only.
    * ``deliveries_refused`` — ejection *attempts* refused because the
      destination input queue was full at the start of the cycle: one
      per refused head message per cycle, matching the sum of
      :attr:`InterfaceStats.refused` exactly (a message refused for
      five cycles counts five attempts in both places).
    """

    cycles: int = 0
    delivered: int = 0
    total_hops: int = 0
    total_latency: int = 0
    deliveries_refused: int = 0
    #: Deliveries and hop totals partitioned by message type, so mixed
    #: workloads (e.g. collective traffic riding alongside point-to-point)
    #: can attribute fabric load per protocol.
    delivered_by_type: Dict[int, int] = dataclass_field(default_factory=dict)
    hops_by_type: Dict[int, int] = dataclass_field(default_factory=dict)

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0


class Fabric:
    """Routers plus interfaces over a :class:`~repro.network.topology.Topology`."""

    def __init__(
        self,
        topology: Topology,
        interfaces: Optional[Sequence[NetworkInterface]] = None,
        link_buffer_depth: int = 4,
        serialization_cycles: int = FLITS_PER_MESSAGE,
        routing: Optional[RoutingPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRecorder] = None,
        lineage=None,
    ) -> None:
        self.topology = topology
        self.routing = routing if routing is not None else DimensionOrder()
        if interfaces is None:
            interfaces = [NetworkInterface(node=n) for n in range(topology.n_nodes)]
        if len(interfaces) != topology.n_nodes:
            raise NetworkError(
                f"{len(interfaces)} interfaces for {topology.n_nodes} nodes"
            )
        self.interfaces: List[NetworkInterface] = list(interfaces)
        self.routers = [
            Router(
                node,
                topology.neighbors(node),
                link_buffer_depth,
                num_vcs=self.routing.num_vcs,
            )
            for node in range(topology.n_nodes)
        ]
        self.serialization_cycles = max(1, serialization_cycles)
        # Per-node serialization state: the head message the countdown was
        # started for, plus the cycles it still occupies the channel.
        self._injection_timers: Dict[int, Tuple[Message, int]] = {}
        self.stats = FabricStats()
        self.tracer = tracer
        self.metrics = metrics
        self._n_links = sum(len(r.neighbors) for r in self.routers)
        self._almost_full_state: Dict[Tuple[int, str], bool] = {}
        if tracer is not None:
            clock = lambda: self.stats.cycles  # noqa: E731 - shared cycle clock
            for router in self.routers:
                router.attach_tracer(tracer, clock)
            for interface in self.interfaces:
                interface.attach_tracer(tracer, clock)
        self.lineage = None
        if lineage is not None:
            self.attach_lineage(lineage)

    def attach_lineage(self, lineage) -> None:
        """Opt in to span-based lineage tracing (:mod:`repro.obs.lineage`).

        Wires the tracker, on the fabric's cycle clock, into every
        router and interface (and their input queues, for receive-side
        drains) so one tracker sees the whole message path.  Off by
        default; when off the cycle loop pays one identity check at the
        two blocked-move charge sites and one per serialization start.
        """
        self.lineage = lineage
        clock = lambda: self.stats.cycles  # noqa: E731 - shared cycle clock
        for router in self.routers:
            router.attach_lineage(lineage, clock)
        for interface in self.interfaces:
            interface.attach_lineage(lineage, clock)

    def interface(self, node: int) -> NetworkInterface:
        return self.interfaces[self.topology.check_node(node)]

    # ------------------------------------------------------------------
    # Cycle advance.
    # ------------------------------------------------------------------

    def step(self) -> int:
        """Advance one cycle; returns the number of deliveries made."""
        self.stats.cycles += 1
        delivered, link_moves = self._move_messages()
        self._inject_from_interfaces()
        if self.metrics is not None:
            self._sample_metrics(delivered, link_moves)
        return delivered

    def _choose_link(
        self, router: Router, destination: int, outputs_used: set
    ) -> Optional[Tuple[int, int]]:
        """Arbitrate one message's output: the first routing candidate
        whose physical link is free this cycle and whose downstream
        buffer has cycle-start credit; with no credit anywhere, the
        first free-link candidate (the caller charges a blocked move);
        ``None`` when every candidate link is already spoken for."""
        routers = self.routers
        node = router.node

        def free(neighbor: int, vc: int) -> int:
            return routers[neighbor].free_slots(node, vc)

        fallback = None
        for next_node, vc in self.routing.candidates(
            self.topology, node, destination, free
        ):
            if ("link", next_node) in outputs_used:
                continue
            if fallback is None:
                fallback = (next_node, vc)
            if routers[next_node].can_accept_from(node, vc):
                return (next_node, vc)
        return fallback

    def _move_messages(self) -> Tuple[int, int]:
        delivered = 0
        link_moves = 0
        tracer = self.tracer
        lineage = self.lineage
        # Snapshot service decisions AND credits before moving anything,
        # so a message cannot traverse two links in one cycle and a
        # buffer slot freed by an earlier move this cycle cannot be
        # consumed by a later one (drain order must not depend on router
        # iteration order).  Routing candidates see the same cycle-start
        # congestion view for the same reason.
        moves: List[Tuple[Router, SourceKey, Tuple[str, int, int]]] = []
        link_credit: Dict[Tuple[int, int, int], bool] = {}
        eject_credit: Dict[int, bool] = {}
        for router in self.routers:
            outputs_used = set()
            # Heads with no downstream credit anywhere must not claim the
            # physical link during the scan: a virtual channel exists
            # precisely so a blocked head cannot hold the link hostage
            # (without this, a full escape channel could starve the open
            # dateline channel behind it forever).  They are deferred and
            # charge a blocked move only on links no mover claimed.
            deferred: List[Tuple[SourceKey, int, int]] = []
            for source in router.pending_sources():
                item = router.peek(source)
                destination = item.message.destination
                if destination == router.node:
                    if ("eject", router.node) in outputs_used:
                        continue
                    outputs_used.add(("eject", router.node))
                    moves.append((router, source, ("eject", router.node, 0)))
                    eject_credit[router.node] = self.interfaces[
                        router.node
                    ].can_accept()
                    continue
                chosen = self._choose_link(router, destination, outputs_used)
                if chosen is None:
                    continue
                next_node, vc = chosen
                key = (next_node, router.node, vc)
                if self.routers[next_node].can_accept_from(router.node, vc):
                    outputs_used.add(("link", next_node))
                    link_credit[key] = True
                    moves.append((router, source, ("link", next_node, vc)))
                else:
                    deferred.append((source, next_node, vc))
            for source, next_node, vc in deferred:
                if ("link", next_node) in outputs_used:
                    continue
                outputs_used.add(("link", next_node))
                link_credit[(next_node, router.node, vc)] = False
                moves.append((router, source, ("link", next_node, vc)))
        for router, source, port in moves:
            kind, target, vc = port
            item = router.peek(source)
            if kind == "eject":
                interface = self.interfaces[router.node]
                message = item.message
                # Diverted messages (privileged / PIN mismatch) never
                # consume an input-queue slot, so they bypass the credit
                # snapshot exactly as they bypass the queue itself.
                if eject_credit[router.node] or interface.would_divert(message):
                    accepted = interface.deliver(message)
                else:
                    accepted = interface.refuse_delivery(message)
                if accepted:
                    router.take(source)
                    router.stats.ejected += 1
                    delivered += 1
                    self.stats.delivered += 1
                    self.stats.total_hops += item.hops
                    self.stats.total_latency += self.stats.cycles - item.injected_at
                    mtype = message.mtype
                    by_type = self.stats.delivered_by_type
                    by_type[mtype] = by_type.get(mtype, 0) + 1
                    hops_by = self.stats.hops_by_type
                    hops_by[mtype] = hops_by.get(mtype, 0) + item.hops
                    if tracer is not None:
                        tracer.emit(
                            self.stats.cycles,
                            EJECT,
                            router.node,
                            hops=item.hops,
                            latency=self.stats.cycles - item.injected_at,
                        )
                else:
                    self.stats.deliveries_refused += 1
                    router.stats.blocked_moves += 1
                    if lineage is not None:
                        lineage.on_block(message, self.stats.cycles)
                    if tracer is not None:
                        tracer.emit(
                            self.stats.cycles, BLOCK, router.node, port="eject"
                        )
            else:
                key = (target, router.node, vc)
                if link_credit[key]:
                    # One credit per link channel per cycle (only this
                    # router feeds the (target, self, vc) buffer, but be
                    # explicit).
                    link_credit[key] = False
                    self.routers[target].accept_from(
                        router.node, router.take(source), vc
                    )
                    router.stats.forwarded += 1
                    link_moves += 1
                else:
                    router.stats.blocked_moves += 1
                    if lineage is not None:
                        lineage.on_block(item.message, self.stats.cycles)
                    if tracer is not None:
                        tracer.emit(
                            self.stats.cycles,
                            BLOCK,
                            router.node,
                            port="link",
                            to=target,
                        )
        return delivered, link_moves

    def _inject_from_interfaces(self) -> None:
        for node, interface in enumerate(self.interfaces):
            router = self.routers[node]
            head = interface.peek_outgoing()
            if head is None:
                self._injection_timers.pop(node, None)
                continue
            if not router.can_inject():
                continue
            # Model flit-serial injection: a message occupies the channel
            # for serialization_cycles before entering the router.  The
            # countdown belongs to the specific message it was started
            # for: a different head (after a drain/clear between steps)
            # must serialise from the beginning, never inherit the
            # previous head's mostly-elapsed timer.
            entry = self._injection_timers.get(node)
            if entry is None or entry[0] is not head:
                remaining = self.serialization_cycles
                if self.lineage is not None:
                    self.lineage.on_serialize_start(head, self.stats.cycles)
            else:
                remaining = entry[1]
            remaining -= 1
            if remaining > 0:
                self._injection_timers[node] = (head, remaining)
                continue
            self._injection_timers.pop(node, None)
            message = interface.transmit()
            assert message is head
            router.inject(InTransit(message, injected_at=self.stats.cycles))

    def _sample_metrics(self, delivered: int, link_moves: int) -> None:
        """Record this cycle's time-series samples and threshold edges."""
        metrics = self.metrics
        cycle = self.stats.cycles
        input_depth = 0
        output_depth = 0
        for interface in self.interfaces:
            input_depth += interface.input_queue.depth
            output_depth += interface.output_queue.depth
        metrics.sample("in_flight", cycle, self.in_flight())
        metrics.sample("input_queue_depth", cycle, input_depth)
        metrics.sample("output_queue_depth", cycle, output_depth)
        metrics.sample("deliveries", cycle, delivered)
        metrics.sample(
            "link_utilization",
            cycle,
            link_moves / self._n_links if self._n_links else 0.0,
        )
        state = self._almost_full_state
        for interface in self.interfaces:
            for queue_name, queue in (
                ("iq", interface.input_queue),
                ("oq", interface.output_queue),
            ):
                asserted = queue.almost_full
                key = (interface.node, queue_name)
                if asserted != state.get(key, False):
                    state[key] = asserted
                    metrics.crossing(cycle, interface.node, queue_name, asserted)

    # ------------------------------------------------------------------
    # Convenience drivers.
    # ------------------------------------------------------------------

    def in_flight(self) -> int:
        """Messages currently inside routers (not counting endpoint queues)."""
        return sum(router.occupancy for router in self.routers)

    def pending(self) -> int:
        """All undelivered traffic: router occupancy plus output queues."""
        return self.in_flight() + sum(
            ni.output_queue.depth for ni in self.interfaces
        )

    # ------------------------------------------------------------------
    # Deadlock detection.
    # ------------------------------------------------------------------

    def find_deadlock(self) -> Optional[List[str]]:
        """A cycle of full buffers whose heads all wait on each other.

        Builds the buffer wait-for graph: each **full** link buffer's
        head message contributes edges to every candidate downstream
        buffer that is itself full (a head with any non-full candidate
        can still move, so it cannot sustain a deadlock).  A cycle in
        that graph is a true deadlock under credit flow control: every
        buffer in it waits, forever, on the next.  Returns the cycle as
        human-readable buffer descriptions (closing entry repeated), or
        ``None`` when no such cycle exists — e.g. mere congestion, or an
        endpoint refusing deliveries, which backpressure resolves once
        the endpoint drains.
        """
        routers = self.routers
        # Wait-for edges between full link buffers, keyed (node, neighbor, vc).
        edges: Dict[Tuple[int, int, int], List[Tuple[int, int, int]]] = {}
        heads: Dict[Tuple[int, int, int], int] = {}
        for router in routers:
            for key, buffer in router.in_buffers.items():
                if len(buffer) < router.link_buffer_depth:
                    continue
                destination = buffer[0].message.destination
                if destination == router.node:
                    continue  # waiting on the endpoint, not on a buffer
                node_key = (router.node,) + key
                heads[node_key] = destination

                def free(neighbor: int, vc: int, _node=router.node) -> int:
                    return routers[neighbor].free_slots(_node, vc)

                waits = []
                blocked_everywhere = True
                for next_node, vc in self.routing.candidates(
                    self.topology, router.node, destination, free
                ):
                    downstream = routers[next_node]
                    if downstream.free_slots(router.node, vc) > 0:
                        blocked_everywhere = False
                        break
                    waits.append((next_node, router.node, vc))
                if blocked_everywhere:
                    edges[node_key] = waits
        # Cycle search over the wait-for graph (iterative DFS, colours).
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {key: WHITE for key in edges}
        for start in edges:
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[Tuple[int, int, int], int]] = [(start, 0)]
            path = [start]
            colour[start] = GREY
            while stack:
                node_key, branch = stack[-1]
                successors = [w for w in edges.get(node_key, ()) if w in edges]
                if branch < len(successors):
                    stack[-1] = (node_key, branch + 1)
                    succ = successors[branch]
                    if colour.get(succ) == GREY:
                        cycle = path[path.index(succ):] + [succ]
                        return [
                            f"router {n} buffer from {nb} vc{vc} "
                            f"(head -> {heads[(n, nb, vc)]})"
                            for n, nb, vc in cycle
                        ]
                    if colour.get(succ) == WHITE:
                        colour[succ] = GREY
                        stack.append((succ, 0))
                        path.append(succ)
                else:
                    colour[node_key] = BLACK
                    stack.pop()
                    path.pop()
        return None

    # The fabric is itself a kernel component (repro.sim): one tick is
    # one cycle, quiescence is "no undelivered traffic", and the stall
    # snapshot shows where messages are stuck — naming the deadlocked
    # buffer cycle when one exists.

    name = "fabric"

    def tick(self, cycle: int) -> None:
        self.step()

    def quiescent(self) -> bool:
        return self.pending() == 0

    def snapshot(self) -> Dict[str, object]:
        """Diagnostic state for the kernel's stall report."""
        state: Dict[str, object] = {
            "in_flight": self.in_flight(),
            "output_queues": {
                ni.node: ni.output_queue.depth
                for ni in self.interfaces
                if ni.output_queue.depth
            },
            "input_queues": {
                ni.node: ni.input_queue.depth
                for ni in self.interfaces
                if ni.input_queue.depth
            },
            "cycles": self.stats.cycles,
        }
        deadlock = self.find_deadlock()
        if deadlock is not None:
            state["deadlock"] = " -> ".join(deadlock)
        return state

    def run_until_quiescent(self, max_cycles: int = 100_000) -> int:
        """Step until no traffic remains in routers or output queues.

        Input queues may remain non-empty (that is endpoint work); raises
        with the kernel's diagnostic snapshot if the fabric cannot drain
        — e.g. receivers never accept, or the routing policy deadlocked
        (the snapshot then names the buffer-wait cycle) — within
        ``max_cycles``.
        """
        kernel = SimKernel()
        kernel.register(self)
        return kernel.run(
            max_cycles=max_cycles, stall_error=NetworkError, label="fabric"
        ).cycles
