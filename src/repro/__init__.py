"""Reproduction of Henry & Joerg, *A Tightly-Coupled Processor-Network
Interface* (ASPLOS-V, 1992).

The package implements the paper's network-interface architecture and the
full evaluation stack around it:

* :mod:`repro.nic` — the interface itself: registers, queues, SEND / NEXT,
  REPLY / FORWARD modes, hardware dispatch (MsgIp), protection, and a
  clocked RTL-style model.
* :mod:`repro.isa` — an 88100-flavoured RISC model with the paper's cycle
  cost rules, used to execute and count the handler kernels.
* :mod:`repro.impls` — the three placements (off-chip, on-chip, register
  file), each in basic and optimized form: the six models of Section 4.
* :mod:`repro.kernels` — the handwritten handler sequences behind Table 1.
* :mod:`repro.network` / :mod:`repro.node` — a multicomputer substrate:
  mesh fabric, node memory, I-structures, behavioural handlers.
* :mod:`repro.tam` / :mod:`repro.programs` — a TAM-style fine-grain
  threaded abstract machine and the two evaluation programs (matrix
  multiply and a Gamteb-style photon transport).
* :mod:`repro.eval` — harnesses that regenerate Table 1, Figure 12, the
  off-chip latency sweep, and the extension studies.
* :mod:`repro.api` — a high-level user API for building small machines and
  issuing remote operations.
"""

from repro.nic import (
    ClockedNIC,
    Message,
    NetworkInterface,
    SendMode,
    SendResult,
)

__version__ = "1.0.0"

__all__ = [
    "ClockedNIC",
    "Message",
    "NetworkInterface",
    "SendMode",
    "SendResult",
    "__version__",
]
