"""Run the whole evaluation from one entry point.

``python -m repro`` regenerates every table and figure of the paper plus
the extension studies; individual harnesses remain available as
``python -m repro.eval.<name>``.

Options::

    python -m repro                 # default scales (fast)
    python -m repro --paper-scale   # matmul 100x100, gamteb 16
    python -m repro --profile       # print timing spans and counters
"""

from __future__ import annotations

import argparse
import sys

from repro.utils.profiling import PROFILER


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Henry & Joerg, 'A Tightly-Coupled Processor-Network "
            "Interface' (ASPLOS 1992)"
        ),
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's program sizes (slower)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time each section and the TAM runtime; print a report at the end",
    )
    parser.add_argument(
        "--skip",
        nargs="*",
        default=[],
        choices=[
            "table1",
            "roundtrip",
            "throughput",
            "figure12",
            "latency",
            "ablation",
            "grain",
            "survey",
        ],
        help="sections to skip",
    )
    args = parser.parse_args(argv)

    if args.profile:
        PROFILER.enable()

    def banner(title: str) -> None:
        print()
        print("#" * 72)
        print(f"# {title}")
        print("#" * 72)

    def section_table1() -> None:
        banner("Table 1 (Section 4.1)")
        from repro.eval.table1 import render_report

        print(render_report())

    def section_roundtrip() -> None:
        banner("End-to-end operation costs (derived from Table 1)")
        from repro.eval.roundtrip import render_roundtrips

        print(render_roundtrips())

    def section_throughput() -> None:
        banner("Steady-state service-loop throughput (derived)")
        from repro.eval.throughput import render_throughput

        print(render_throughput())

    def section_figure12() -> None:
        banner("Figure 12 (Section 4.2.3)")
        from repro.eval.figure12 import PAPER_SIZES, render_figure, run_program

        for program in ("matmul", "gamteb"):
            size = PAPER_SIZES[program] if args.paper_scale else None
            stats = run_program(program, size=size)
            print(render_figure(program, stats))
            print()

    def section_latency() -> None:
        banner("Off-chip latency sensitivity (Section 4.2.3)")
        from repro.eval.figure12 import run_program
        from repro.eval.latency import render_sweep, sweep

        stats = run_program("matmul", size=100 if args.paper_scale else 24)
        print(render_sweep("matmul", sweep(stats)))

    def section_ablation() -> None:
        banner("Per-optimization ablation (extension)")
        from repro.eval.ablation import render_ablation, run_ablation
        from repro.eval.figure12 import run_program

        stats = run_program("matmul", size=24)
        print(render_ablation("matmul", run_ablation(stats)))

    def section_grain() -> None:
        banner("Grain-size sensitivity (extension)")
        from repro.eval.grain import render_grain, sweep as grain_sweep

        print(render_grain(grain_sweep()))

    def section_survey() -> None:
        banner("Section 1 survey (extension)")
        from repro.eval.survey import render_survey

        print(render_survey())

    sections = [
        ("table1", section_table1),
        ("roundtrip", section_roundtrip),
        ("throughput", section_throughput),
        ("figure12", section_figure12),
        ("latency", section_latency),
        ("ablation", section_ablation),
        ("grain", section_grain),
        ("survey", section_survey),
    ]
    for name, run_section in sections:
        if name in args.skip:
            continue
        with PROFILER.span(f"section.{name}"):
            run_section()

    if args.profile:
        print()
        print(PROFILER.report())

    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
