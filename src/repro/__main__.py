"""Run the whole evaluation from one entry point.

``python -m repro`` regenerates every table and figure of the paper plus
the extension studies; individual harnesses remain available as
``python -m repro.eval.<name>``.  The driver is a thin loop over the
experiment registry (:mod:`repro.exp`): each section is an
:class:`~repro.exp.spec.ExperimentSpec`, shared TAM program runs are
served by the run cache, and every section writes a versioned JSON
artifact next to its text report.

Options::

    python -m repro                   # default scales (fast)
    python -m repro --paper-scale     # matmul 100x100, gamteb 16
    python -m repro --only figure12   # a subset of sections
    python -m repro --jobs 4          # fan sections out across processes
    python -m repro --json-dir out/   # artifact directory (default results/)
    python -m repro --profile         # print timing spans and counters
    python -m repro --profile-sim     # in-run per-component cycle attribution
    python -m repro --trace           # record message-path traces
    python -m repro --trace-dir t/    # trace artifact directory (implies --trace)
    python -m repro --lineage         # per-message spans + lineage.json breakdown
    python -m repro --perfdb          # append section timings to results/perfdb
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.exp import registry
from repro.exp.artifacts import write_artifact
from repro.exp.runner import iter_experiments, record_outcomes
from repro.exp.spec import EvalOptions
from repro.utils.profiling import PROFILER


def main(argv=None) -> int:
    registry.load_all()
    section_names = registry.names()

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce Henry & Joerg, 'A Tightly-Coupled Processor-Network "
            "Interface' (ASPLOS 1992)"
        ),
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's program sizes (slower)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="time each section and the TAM runtime; print a report at the end",
    )
    parser.add_argument(
        "--profile-sim",
        action="store_true",
        help=(
            "attach the simulation profiler in sections that support it: "
            "per-component cycle/time attribution inside each run, printed "
            "with the section report (distinct from --profile, which times "
            "whole sections from the host side)"
        ),
    )
    parser.add_argument(
        "--perfdb",
        type=Path,
        nargs="?",
        const=Path("results") / "perfdb",
        default=None,
        help=(
            "append one perf record per section to this cross-run database "
            "(default directory when given bare: results/perfdb); trend and "
            "gate them with python -m repro.obs.report"
        ),
    )
    parser.add_argument(
        "--skip",
        nargs="*",
        default=[],
        choices=section_names,
        help="sections to skip",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        choices=section_names,
        help="run just these sections (still in report order)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the section fan-out (default: 1, serial; "
            "capped at os.cpu_count())"
        ),
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=Path("results"),
        help="directory for the JSON artifacts (default: results/)",
    )
    parser.add_argument(
        "--no-json",
        action="store_true",
        help="skip writing JSON artifacts",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record message-path traces in sections that support them and "
            "write Chrome trace_event JSON plus metrics time-series"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help=(
            "directory for trace artifacts (default: <json-dir>/traces; "
            "implies --trace)"
        ),
    )
    parser.add_argument(
        "--lineage",
        action="store_true",
        help=(
            "record per-message lineage spans in sections that support "
            "them: exact latency breakdown, causal critical path, and a "
            "versioned lineage.json under the trace directory"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help=(
            "persistent on-disk run cache for TAM executions "
            "(default: in-process only; --jobs uses a scratch directory)"
        ),
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")

    if args.profile:
        PROFILER.enable()

    selected = [
        name
        for name in section_names
        if (args.only is None or name in args.only) and name not in args.skip
    ]
    specs = [registry.get(name) for name in selected]
    trace = args.trace or args.trace_dir is not None
    trace_dir = args.trace_dir if args.trace_dir is not None else args.json_dir / "traces"
    options = EvalOptions(
        paper_scale=args.paper_scale,
        trace=trace,
        trace_dir=str(trace_dir) if trace or args.lineage else None,
        profile_sim=args.profile_sim,
        lineage=args.lineage,
    )

    def banner(title: str) -> None:
        print()
        print("#" * 72)
        print(f"# {title}")
        print("#" * 72)

    outcomes = iter_experiments(
        specs, options, jobs=args.jobs, cache_dir=args.cache_dir
    )
    finished = []
    for outcome in outcomes:
        banner(outcome.title)
        print(outcome.text)
        if not args.no_json:
            path = write_artifact(args.json_dir, outcome.artifact)
            print(f"[artifact] {path}")
        finished.append(outcome)

    if args.perfdb is not None:
        for path in record_outcomes(args.perfdb, finished):
            print(f"[perfdb] {path}")

    if args.profile:
        print()
        print(PROFILER.report())

    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
