"""Synthetic message-pattern microbenchmarks on TAM.

The paper's program results hold for its fine-grain TAM workloads and it
explicitly scopes them: "For coarser grained models the message types and
frequencies may be substantially different ... But the results of Table 1
are still relevant" (Section 4.2.2).  These parameterised workloads let
the evaluation explore that scoping directly:

* :func:`run_grain_sweep_point` — a compute/communicate loop with a
  controllable number of floating-point operations per message, for the
  grain-size study (:mod:`repro.eval.grain`);
* :func:`run_ping_pong` — two activations bouncing a counter, the purest
  send/dispatch/process round trip;
* :func:`run_fan_out` — one root spawning ``width`` workers that each
  report back, a service/collection pattern.

All are verified (the computed values are checked) and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TamError
from repro.tam.codeblock import Codeblock
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    Imm,
    Op,
    OpInstr,
    ResetInstr,
    SelfInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
)
from repro.tam.runtime import TamMachine
from repro.tam.stats import TamStats


# ---------------------------------------------------------------------------
# Grain sweep: k flops between consecutive messages.
# ---------------------------------------------------------------------------


def _build_grain_worker(flops_per_message: int, rounds: int) -> Codeblock:
    """A worker that alternates ``flops_per_message`` FMULs with a report."""
    parent, acc, i, cond, self_slot = 0, 1, 2, 3, 4
    block = Codeblock("grain_worker", frame_size=5)
    block.add_inlet(0, dest_slots=(parent,), counter="args")
    block.add_counter("args", 1, "start")
    block.add_thread(
        "start",
        [ConInstr(acc, 1.0), ConInstr(i, 0), ForkInstr("round"), StopInstr()],
    )
    body = []
    for _ in range(flops_per_message):
        body.append(OpInstr(Op.FMUL, acc, acc, Imm(1.0000001)))
    body += [
        SendInstr(frame_slot=parent, inlet=1, values=(acc,)),
        OpInstr(Op.IADD, i, i, Imm(1)),
        OpInstr(Op.LT, cond, i, Imm(rounds)),
        SwitchInstr(cond, "round"),
        StopInstr(),
    ]
    block.add_thread("round", body)
    del self_slot
    return block


def _build_grain_driver(workers: int, rounds: int) -> Codeblock:
    self_slot, child, i, cond, acc_in, total, remaining, done = range(8)
    driver = Codeblock("grain_driver", frame_size=8)
    driver.add_inlet(0, dest_slots=(child,), counter="child_ready")
    driver.add_counter("child_ready", 1, "feed")
    driver.add_inlet(1, dest_slots=(acc_in,), counter="tick")
    driver.add_counter("tick", 1, "accumulate")
    driver.add_thread(
        "entry",
        [
            ConInstr(i, 0),
            ConInstr(total, 0.0),
            ConInstr(remaining, workers * rounds),
            ConInstr(done, 0),
            ForkInstr("spawn_next"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "spawn_next",
        [
            OpInstr(Op.LT, cond, i, Imm(workers)),
            SwitchInstr(cond, "spawn_one"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "spawn_one",
        [
            ResetInstr("child_ready", 1),
            FallocInstr("grain_worker", reply_inlet=0),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "feed",
        [
            SelfInstr(self_slot),
            SendInstr(frame_slot=child, inlet=0, values=(self_slot,)),
            OpInstr(Op.IADD, i, i, Imm(1)),
            ForkInstr("spawn_next"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "accumulate",
        [
            ResetInstr("tick", 1),
            OpInstr(Op.FADD, total, total, acc_in),
            OpInstr(Op.ISUB, remaining, remaining, Imm(1)),
            OpInstr(Op.LE, cond, remaining, Imm(0)),
            SwitchInstr(cond, "finish"),
            StopInstr(),
        ],
    )
    driver.add_thread("finish", [ConInstr(done, 1), StopInstr()])
    driver.set_entry("entry")
    return driver


@dataclass
class GrainPoint:
    flops_per_message: int
    stats: TamStats
    total: float


def run_grain_sweep_point(
    flops_per_message: int,
    workers: int = 8,
    rounds: int = 8,
    nodes: int = 8,
) -> GrainPoint:
    """One point of the grain study: k flops between messages."""
    if flops_per_message < 0:
        raise TamError("flops_per_message must be non-negative")
    machine = TamMachine(nodes)
    machine.load(_build_grain_worker(flops_per_message, rounds))
    machine.load(_build_grain_driver(workers, rounds))
    ref = machine.boot("grain_driver")
    stats = machine.run()
    if not machine.read_slot(ref, 7):
        raise TamError("grain driver never finished")
    total = machine.read_slot(ref, 5)
    expected_reports = workers * rounds
    if stats.messages.sends_by_words[1] < expected_reports:
        raise TamError("grain workers under-reported")
    return GrainPoint(flops_per_message, stats, float(total))


# ---------------------------------------------------------------------------
# Ping-pong.
# ---------------------------------------------------------------------------


def run_ping_pong(rounds: int = 64, nodes: int = 2) -> TamStats:
    """Two activations bounce an incrementing counter ``rounds`` times."""
    peer, value_in, cond, self_slot, done = 0, 1, 2, 3, 4
    pong = Codeblock("pong", frame_size=5)
    pong.add_inlet(0, dest_slots=(peer,), counter="args")
    pong.add_counter("args", 1, "noop")
    pong.add_inlet(1, dest_slots=(value_in,), counter="ball")
    pong.add_counter("ball", 1, "hit")
    pong.add_thread("noop", [StopInstr()])
    pong.add_thread(
        "hit",
        [
            ResetInstr("ball", 1),
            OpInstr(Op.IADD, value_in, value_in, Imm(1)),
            OpInstr(Op.LT, cond, value_in, Imm(rounds)),
            SwitchInstr(cond, "return_ball", "finish"),
            StopInstr(),
        ],
    )
    pong.add_thread(
        "return_ball",
        [SendInstr(frame_slot=peer, inlet=1, values=(value_in,)), StopInstr()],
    )
    pong.add_thread("finish", [ConInstr(done, 1), StopInstr()])

    driver = Codeblock("pp_driver", frame_size=6)
    a_slot, b_slot = 0, 1
    driver.add_inlet(0, dest_slots=(a_slot,), counter="kids")
    driver.add_inlet(1, dest_slots=(b_slot,), counter="kids")
    driver.add_counter("kids", 2, "wire")
    driver.add_thread(
        "entry",
        [
            FallocInstr("pong", reply_inlet=0),
            FallocInstr("pong", reply_inlet=1),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "wire",
        [
            # Introduce the peers to each other, then serve.
            SendInstr(frame_slot=a_slot, inlet=0, values=(b_slot,)),
            SendInstr(frame_slot=b_slot, inlet=0, values=(a_slot,)),
            ConInstr(2, 0),
            SendInstr(frame_slot=a_slot, inlet=1, values=(2,)),
            StopInstr(),
        ],
    )
    driver.set_entry("entry")

    machine = TamMachine(nodes)
    machine.load(pong)
    machine.load(driver)
    machine.boot("pp_driver")
    stats = machine.run()
    # rounds hits = at least rounds ball messages.
    if stats.messages.sends_by_words[1] < rounds:
        raise TamError("ping-pong lost the ball")
    return stats


# ---------------------------------------------------------------------------
# Fan-out / collection.
# ---------------------------------------------------------------------------


def run_fan_out(width: int = 32, nodes: int = 8) -> TamStats:
    """One root spawns ``width`` workers; each squares its id and reports."""
    parent, my_id, result, self_slot = 0, 1, 2, 3
    worker = Codeblock("fan_worker", frame_size=4)
    worker.add_inlet(0, dest_slots=(parent, my_id), counter="args")
    worker.add_counter("args", 1, "work")
    worker.add_thread(
        "work",
        [
            OpInstr(Op.IMUL, result, my_id, my_id),
            SendInstr(frame_slot=parent, inlet=1, values=(my_id, result)),
            StopInstr(),
        ],
    )
    del self_slot

    s_self, s_child, s_i, s_cond, s_id_in, s_val_in, s_sum, s_remaining, s_done = range(9)
    driver = Codeblock("fan_driver", frame_size=9)
    driver.add_inlet(0, dest_slots=(s_child,), counter="child_ready")
    driver.add_counter("child_ready", 1, "feed")
    driver.add_inlet(1, dest_slots=(s_id_in, s_val_in), counter="report")
    driver.add_counter("report", 1, "collect")
    driver.add_thread(
        "entry",
        [
            ConInstr(s_i, 0),
            ConInstr(s_sum, 0),
            ConInstr(s_remaining, width),
            ConInstr(s_done, 0),
            ForkInstr("spawn_next"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "spawn_next",
        [
            OpInstr(Op.LT, s_cond, s_i, Imm(width)),
            SwitchInstr(s_cond, "spawn_one"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "spawn_one",
        [
            ResetInstr("child_ready", 1),
            FallocInstr("fan_worker", reply_inlet=0),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "feed",
        [
            SelfInstr(s_self),
            SendInstr(frame_slot=s_child, inlet=0, values=(s_self, s_i)),
            OpInstr(Op.IADD, s_i, s_i, Imm(1)),
            ForkInstr("spawn_next"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "collect",
        [
            ResetInstr("report", 1),
            OpInstr(Op.IADD, s_sum, s_sum, s_val_in),
            OpInstr(Op.ISUB, s_remaining, s_remaining, Imm(1)),
            OpInstr(Op.LE, s_cond, s_remaining, Imm(0)),
            SwitchInstr(s_cond, "finish"),
            StopInstr(),
        ],
    )
    driver.add_thread("finish", [ConInstr(s_done, 1), StopInstr()])
    driver.set_entry("entry")

    machine = TamMachine(nodes)
    machine.load(worker)
    machine.load(driver)
    ref = machine.boot("fan_driver")
    stats = machine.run()
    total = machine.read_slot(ref, s_sum)
    expected = sum(i * i for i in range(width))
    if total != expected:
        raise TamError(f"fan-out sum {total} != {expected}")
    return stats
