"""Gamteb on TAM: Monte Carlo photon transport (the paper's second benchmark).

"Gamteb performs a Monte Carlo photon transport simulation" (Section 4.2).
The original traces photons through a carbon cylinder with Compton
scattering, absorption, and pair production.  This reproduction keeps the
NI-relevant structure — what the paper measured is the *message mix* the
program generates — while simplifying the physics:

* photons carry an energy *group*; per-collision cross sections live in a
  shared I-structure table, so **every collision fetches two table entries
  with PReads** (the table is filled concurrently with the first photons'
  flights, so fetches hit full, empty, and deferred elements);
* each collision draws from a deterministic per-photon LCG (computed in
  TAM integer arithmetic — runs are bit-reproducible) and the photon
  **escapes**, is **absorbed**, **scatters** down in energy, or — the pair
  -production analogue — **splits**, FALLOC-ing a new photon activation;
* tallies aggregate up the spawn tree: each photon reports (absorbed,
  escaped) counts to its parent only after all its descendants have
  reported, so termination is race-free and the final counts conserve
  photons exactly.

Every photon is its own activation; photons are spread round-robin over
the nodes, and all interaction (argument passing, table access, tallies)
is messages — as the paper's compilation demanded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TamError
from repro.tam.codeblock import Codeblock
from repro.tam.frame import FrameRef
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    IstoreInstr,
    Op,
    OpInstr,
    ResetInstr,
    SelfInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
)
from repro.tam.runtime import TamMachine
from repro.tam.stats import TamStats
from repro.programs.support import InletNumbers, Slots

GROUPS = 8
"""Energy groups; photons are born in the highest group."""

SPLIT_MIN_GROUP = 4
"""Pair production only above this energy group."""

SPLIT_PROBABILITY = 0.10
ESCAPE_SIGMA = 0.15

PHOTON_DONE_INLET = 6
"""Inlet number where both photons and the driver receive subtree tallies."""

LCG_MULT = 1103515245
LCG_ADD = 12345
LCG_MOD = 2**31


def scatter_sigma(group: int) -> float:
    return 0.5 + 0.04 * group


def absorb_sigma(group: int) -> float:
    return 0.2 + 0.02 * (GROUPS - group)


# ---------------------------------------------------------------------------
# The photon codeblock.
# ---------------------------------------------------------------------------


def build_photon_codeblock(done_inlet: int) -> Codeblock:
    """One photon activation.

    ``done_inlet`` is the inlet number — identical on the parent photon
    and on the driver — where the (absorbed, escaped) subtree tally is
    reported, so root photons and descendants share one codeblock.
    """
    s = Slots()
    parent = s.one("parent")
    table = s.one("table")
    group = s.one("group")
    rng = s.one("rng")
    sig_s = s.one("sig_s")
    sig_a = s.one("sig_a")
    absorbed = s.one("absorbed")
    escaped = s.one("escaped")
    kids = s.one("kids")
    dead = s.one("dead")
    child = s.one("child")
    child_seed = s.one("child_seed")
    child_group = s.one("child_group")
    ca = s.one("ca")
    ce = s.one("ce")
    t = s.one("t")
    u = s.one("u")
    p1 = s.one("p1")
    p2 = s.one("p2")
    tot = s.one("tot")
    cond = s.one("cond")
    self_slot = s.one("self")

    inlets = InletNumbers()
    in_parent = inlets.one("parent")
    in_table = inlets.one("table")
    in_state = inlets.one("state")
    in_sig_s = inlets.one("sig_s")
    in_sig_a = inlets.one("sig_a")
    in_kid = inlets.one("kid")
    in_done = inlets.one("done")
    if in_done != done_inlet:
        raise TamError(
            f"photon done inlet is {in_done}, driver expects {done_inlet}"
        )

    photon = Codeblock("photon", frame_size=s.size)
    photon.add_inlet(in_parent, dest_slots=(parent,), counter="args")
    photon.add_inlet(in_table, dest_slots=(table,), counter="args")
    photon.add_inlet(in_state, dest_slots=(group, rng), counter="args")
    photon.add_counter("args", 3, "start")
    photon.add_inlet(in_sig_s, dest_slots=(sig_s,), counter="sig")
    photon.add_inlet(in_sig_a, dest_slots=(sig_a,), counter="sig")
    photon.add_counter("sig", 2, "collide")
    photon.add_inlet(in_kid, dest_slots=(child,), counter="kid_ready")
    photon.add_counter("kid_ready", 1, "feed_kid")
    photon.add_inlet(in_done, dest_slots=(ca, ce), counter="kid_done")
    photon.add_counter("kid_done", 1, "merge")

    photon.add_thread(
        "start",
        [
            ConInstr(absorbed, 0),
            ConInstr(escaped, 0),
            ConInstr(kids, 0),
            ConInstr(dead, 0),
            ForkInstr("step"),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "step",
        [
            ResetInstr("sig", 2),
            OpInstr(Op.IMUL, t, group, Imm(2)),
            IfetchInstr(table, t, reply_inlet=in_sig_s),
            OpInstr(Op.IADD, t, t, Imm(1)),
            IfetchInstr(table, t, reply_inlet=in_sig_a),
            StopInstr(),
        ],
    )

    def advance_rng():
        """state = (LCG_MULT*state + LCG_ADD) mod 2^31, in TAM integer ops."""
        return [
            OpInstr(Op.IMUL, rng, rng, Imm(LCG_MULT)),
            OpInstr(Op.IADD, rng, rng, Imm(LCG_ADD)),
            OpInstr(Op.IDIV, t, rng, Imm(LCG_MOD)),
            OpInstr(Op.IMUL, t, t, Imm(LCG_MOD)),
            OpInstr(Op.ISUB, rng, rng, t),
        ]

    photon.add_thread(
        "collide",
        advance_rng()
        + [
            OpInstr(Op.FDIV, u, rng, Imm(LCG_MOD)),
            # tot = sig_s + sig_a + sigma_escape
            OpInstr(Op.FADD, tot, sig_s, sig_a),
            OpInstr(Op.FADD, tot, tot, Imm(ESCAPE_SIGMA)),
            OpInstr(Op.FDIV, p1, Imm(ESCAPE_SIGMA), tot),
            OpInstr(Op.FADD, p2, sig_a, Imm(ESCAPE_SIGMA)),
            OpInstr(Op.FDIV, p2, p2, tot),
            OpInstr(Op.LT, cond, u, p1),
            SwitchInstr(cond, "escape", "check_absorb"),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "escape",
        [OpInstr(Op.IADD, escaped, escaped, Imm(1)), ForkInstr("die"), StopInstr()],
    )
    photon.add_thread(
        "absorb",
        [OpInstr(Op.IADD, absorbed, absorbed, Imm(1)), ForkInstr("die"), StopInstr()],
    )
    photon.add_thread(
        "check_absorb",
        [
            OpInstr(Op.LT, cond, u, p2),
            SwitchInstr(cond, "absorb", "maybe_split"),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "maybe_split",
        advance_rng()
        + [
            OpInstr(Op.FDIV, u, rng, Imm(LCG_MOD)),
            OpInstr(Op.LT, cond, u, Imm(SPLIT_PROBABILITY)),
            OpInstr(Op.LE, t, Imm(SPLIT_MIN_GROUP), group),
            OpInstr(Op.AND, cond, cond, t),
            SwitchInstr(cond, "split", "scatter"),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "scatter",
        [
            OpInstr(Op.ISUB, group, group, Imm(1)),
            # Thermalised photons are absorbed.
            OpInstr(Op.LE, cond, group, Imm(0)),
            SwitchInstr(cond, "absorb", "step"),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "split",
        [
            # Pair production: one new photon two groups down; the parent
            # itself continues via feed_kid once the child frame exists
            # (serialising splits keeps child_seed/child_group stable).
            OpInstr(Op.IADD, kids, kids, Imm(1)),
            OpInstr(Op.ISUB, child_group, group, Imm(2)),
            OpInstr(Op.IMUL, child_seed, rng, Imm(31)),
            OpInstr(Op.IADD, child_seed, child_seed, Imm(7)),
            OpInstr(Op.IDIV, t, child_seed, Imm(LCG_MOD)),
            OpInstr(Op.IMUL, t, t, Imm(LCG_MOD)),
            OpInstr(Op.ISUB, child_seed, child_seed, t),
            ResetInstr("kid_ready", 1),
            FallocInstr("photon", reply_inlet=in_kid),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "feed_kid",
        [
            # Child argument protocol: parent ref, table ref, (group, seed).
            SelfInstr(self_slot),
            SendInstr(frame_slot=child, inlet=in_parent, values=(self_slot,)),
            SendInstr(frame_slot=child, inlet=in_table, values=(table,)),
            SendInstr(
                frame_slot=child, inlet=in_state, values=(child_group, child_seed)
            ),
            # The parent resumes its own flight as a scatter.
            ForkInstr("scatter"),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "die",
        [
            ConInstr(dead, 1),
            OpInstr(Op.LE, cond, kids, Imm(0)),
            SwitchInstr(cond, "report"),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "merge",
        [
            ResetInstr("kid_done", 1),
            OpInstr(Op.IADD, absorbed, absorbed, ca),
            OpInstr(Op.IADD, escaped, escaped, ce),
            OpInstr(Op.ISUB, kids, kids, Imm(1)),
            OpInstr(Op.LE, cond, kids, Imm(0)),
            OpInstr(Op.AND, cond, cond, dead),
            SwitchInstr(cond, "report"),
            StopInstr(),
        ],
    )

    photon.add_thread(
        "report",
        [
            SendInstr(frame_slot=parent, inlet=in_done, values=(absorbed, escaped)),
            StopInstr(),
        ],
    )
    return photon


# ---------------------------------------------------------------------------
# The driver codeblock.
# ---------------------------------------------------------------------------

DRIVER_SELF_SLOT = 0


def build_driver_codeblock(n_photons: int, seed: int) -> Codeblock:
    s = Slots()
    assert s.one("self") == DRIVER_SELF_SLOT
    table = s.one("table")
    fill_i = s.one("fill_i")
    spawn_i = s.one("spawn_i")
    child = s.one("child")
    val = s.one("val")
    t = s.one("t")
    seed_slot = s.one("seed")
    cond = s.one("cond")
    total_abs = s.one("total_abs")
    total_esc = s.one("total_esc")
    ca = s.one("ca")
    ce = s.one("ce")
    remaining = s.one("remaining")
    done_flag = s.one("done_flag")

    inlets = InletNumbers()
    in_table = inlets.one("table")
    in_child = inlets.one("child")
    # The tally inlet must sit at the same number as the photon's own
    # "done" inlet (6): a photon reports to its parent without knowing
    # whether that parent is another photon or the driver.
    in_done = PHOTON_DONE_INLET

    driver = Codeblock("gamteb_driver", frame_size=s.size)
    driver.add_inlet(in_table, dest_slots=(table,), counter="table_ready")
    driver.add_counter("table_ready", 1, "go")
    driver.add_inlet(in_child, dest_slots=(child,), counter="child_ready")
    driver.add_counter("child_ready", 1, "feed")
    driver.add_inlet(in_done, dest_slots=(ca, ce), counter="done_one")
    driver.add_counter("done_one", 1, "accumulate")

    driver.add_thread(
        "entry",
        [
            ConInstr(fill_i, 0),
            ConInstr(spawn_i, 0),
            ConInstr(total_abs, 0),
            ConInstr(total_esc, 0),
            ConInstr(remaining, n_photons),
            ConInstr(done_flag, 0),
            IallocInstr(Imm(2 * GROUPS), reply_inlet=in_table),
            StopInstr(),
        ],
    )
    # Filling and spawning overlap, as in the matmul driver: early photons
    # race the table fill, so some cross-section PReads defer.
    # Photons are sourced first and the table is computed afterwards, the
    # way an Id program's eager consumers race a producer: the first wave
    # of cross-section fetches finds empty elements and defers, and the
    # table fill then satisfies the queued readers through PWrite
    # forwarding — the deferred path the paper prices in Table 1.
    driver.add_thread("go", [ForkInstr("spawn_next"), StopInstr()])

    fill_one = []
    # sigma_scatter(g) = 0.5 + 0.04 g at table[2g];
    # sigma_absorb(g) = 0.2 + 0.02 (GROUPS - g) at table[2g+1].
    fill_one += [
        OpInstr(Op.FMUL, val, fill_i, Imm(0.04)),
        OpInstr(Op.FADD, val, val, Imm(0.5)),
        OpInstr(Op.IMUL, t, fill_i, Imm(2)),
        IstoreInstr(table, t, value=val),
        OpInstr(Op.ISUB, val, Imm(GROUPS), fill_i),
        OpInstr(Op.FMUL, val, val, Imm(0.02)),
        OpInstr(Op.FADD, val, val, Imm(0.2)),
        OpInstr(Op.IADD, t, t, Imm(1)),
        IstoreInstr(table, t, value=val),
        OpInstr(Op.IADD, fill_i, fill_i, Imm(1)),
        ForkInstr("fill_next"),
        StopInstr(),
    ]
    driver.add_thread("fill_one", fill_one)
    driver.add_thread(
        "fill_next",
        [
            OpInstr(Op.LT, cond, fill_i, Imm(GROUPS)),
            SwitchInstr(cond, "fill_one"),
            StopInstr(),
        ],
    )

    driver.add_thread(
        "spawn_next",
        [
            OpInstr(Op.LT, cond, spawn_i, Imm(n_photons)),
            SwitchInstr(cond, "spawn_one", "fill_next"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "spawn_one",
        [
            ResetInstr("child_ready", 1),
            FallocInstr("photon", reply_inlet=in_child),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "feed",
        [
            # Deterministic per-photon seed, derived in TAM arithmetic.
            OpInstr(Op.IMUL, seed_slot, spawn_i, Imm(2654435761 % LCG_MOD)),
            OpInstr(Op.IADD, seed_slot, seed_slot, Imm(seed % LCG_MOD)),
            OpInstr(Op.IDIV, t, seed_slot, Imm(LCG_MOD)),
            OpInstr(Op.IMUL, t, t, Imm(LCG_MOD)),
            OpInstr(Op.ISUB, seed_slot, seed_slot, t),
            ConInstr(val, GROUPS - 1),
            SendInstr(frame_slot=child, inlet=0, values=(DRIVER_SELF_SLOT,)),
            SendInstr(frame_slot=child, inlet=1, values=(table,)),
            SendInstr(frame_slot=child, inlet=2, values=(val, seed_slot)),
            OpInstr(Op.IADD, spawn_i, spawn_i, Imm(1)),
            ForkInstr("spawn_next"),
            StopInstr(),
        ],
    )

    driver.add_thread(
        "accumulate",
        [
            ResetInstr("done_one", 1),
            OpInstr(Op.IADD, total_abs, total_abs, ca),
            OpInstr(Op.IADD, total_esc, total_esc, ce),
            OpInstr(Op.ISUB, remaining, remaining, Imm(1)),
            OpInstr(Op.LE, cond, remaining, Imm(0)),
            SwitchInstr(cond, "finish"),
            StopInstr(),
        ],
    )
    driver.add_thread("finish", [ConInstr(done_flag, 1), StopInstr()])
    driver.set_entry("entry")
    return driver


# ---------------------------------------------------------------------------
# Host-level driver.
# ---------------------------------------------------------------------------


@dataclass
class GamtebResult:
    n_photons: int
    nodes: int
    seed: int
    stats: TamStats
    absorbed: int
    escaped: int
    photons_traced: int
    machine: TamMachine
    driver_ref: FrameRef

    def verify(self) -> None:
        """Photon conservation: every photon ever created died exactly once."""
        if self.absorbed + self.escaped != self.photons_traced:
            raise TamError(
                f"photon count not conserved: {self.absorbed} absorbed + "
                f"{self.escaped} escaped != {self.photons_traced} traced"
            )
        if self.photons_traced < self.n_photons:
            raise TamError("fewer photons traced than were sourced")


def run_gamteb(
    n_photons: int = 16,
    nodes: int = 16,
    seed: int = 19920501,
    verify: bool = True,
    fast: bool = True,
    backend=None,
) -> GamtebResult:
    """Run the Gamteb reproduction with ``n_photons`` source particles.

    ``backend`` names the execution backend ("reference", "fastpath",
    "codegen"); with ``None`` the legacy ``fast`` flag decides.
    """
    machine = TamMachine(nodes, fast=fast, backend=backend)
    driver = build_driver_codeblock(n_photons, seed)
    machine.load(build_photon_codeblock(done_inlet=PHOTON_DONE_INLET))
    machine.load(driver)
    ref = machine.boot("gamteb_driver")
    machine.write_slot(ref, DRIVER_SELF_SLOT, ref)
    stats = machine.run()
    slot_map = _driver_slot_map()
    done = machine.read_slot(ref, slot_map["done_flag"])
    if not done:
        raise TamError("gamteb driver never reached its finish thread")
    absorbed = int(machine.read_slot(ref, slot_map["total_abs"]))
    escaped = int(machine.read_slot(ref, slot_map["total_esc"]))
    # Photons = all frames except the driver's.
    photons = stats.frames_allocated - 1
    result = GamtebResult(
        n_photons=n_photons,
        nodes=nodes,
        seed=seed,
        stats=stats,
        absorbed=absorbed,
        escaped=escaped,
        photons_traced=photons,
        machine=machine,
        driver_ref=ref,
    )
    if verify:
        result.verify()
    return result


def _driver_slot_map() -> dict:
    s = Slots()
    for name in (
        "self",
        "table",
        "fill_i",
        "spawn_i",
        "child",
        "val",
        "t",
        "seed",
        "cond",
        "total_abs",
        "total_esc",
        "ca",
        "ce",
        "remaining",
        "done_flag",
    ):
        s.one(name)
    return {name: s[name] for name in ("total_abs", "total_esc", "done_flag")}
