"""N-Queens on TAM: a Send-dominated divide-and-conquer workload.

The paper reports two programs and notes "the rest give similar results"
(Section 4.2).  Queens complements the two reproduced benchmarks with a
contrasting message mix: where matmul and Gamteb are presence-bit heavy,
a search tree is almost pure procedure-call traffic — FALLOCs and small
Sends — the mix for which the paper's dispatch and type optimizations do
the most work.

Structure: each activation owns one partial placement (encoded as packed
column positions) and one row to extend.  It tries every column; each
safe extension becomes a child activation (FALLOC + argument Sends); a
full placement counts as one solution.  Solution counts aggregate up the
spawn tree exactly like Gamteb's tallies, so termination is race-free and
the total is exact.

Board state is packed into integers (4 bits per column) so it travels in
single message words; the safety test is TAM integer arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TamError
from repro.tam.codeblock import Codeblock
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    Imm,
    Op,
    OpInstr,
    ResetInstr,
    SelfInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
)
from repro.tam.runtime import TamMachine
from repro.tam.stats import TamStats

MAX_N = 7
"""4-bit column packing bounds the board size."""

DONE_INLET = 3
"""Tally inlet number, shared by workers and the driver."""


def reference_count(n: int) -> int:
    """Host-side N-Queens count for verification."""

    def place(row: int, cols: tuple) -> int:
        if row == n:
            return 1
        total = 0
        for col in range(n):
            if all(
                col != c and abs(col - c) != row - r
                for r, c in enumerate(cols)
            ):
                total += place(row + 1, cols + (col,))
        return total

    return place(0, ())


def build_worker(n: int) -> Codeblock:
    """One activation: extend the placement in one row.

    Frame layout: parent ref, packed board, row, loop column, counters.
    The packed board stores column ``c`` of row ``r`` in bits ``4r..4r+3``
    offset by 1 (so 0 means "no queen"), letting the safety check unpack
    with shifts and masks — all plain TAM integer ops.
    """
    (
        parent,
        board,
        row,
        col,
        kids,
        solutions,
        dead,
        child,
        child_board,
        ca,
        t,
        u,
        r2,
        diff,
        cond,
        safe,
        self_slot,
    ) = range(17)

    worker = Codeblock("queens_worker", frame_size=17)
    worker.add_inlet(0, dest_slots=(parent,), counter="args")
    worker.add_inlet(1, dest_slots=(board, row), counter="args")
    worker.add_counter("args", 2, "start")
    worker.add_inlet(2, dest_slots=(child,), counter="kid_ready")
    worker.add_counter("kid_ready", 1, "feed_kid")
    worker.add_inlet(DONE_INLET, dest_slots=(ca,), counter="kid_done")
    worker.add_counter("kid_done", 1, "merge")

    worker.add_thread(
        "start",
        [
            ConInstr(kids, 0),
            ConInstr(solutions, 0),
            ConInstr(dead, 0),
            ConInstr(col, 0),
            ForkInstr("try_col"),
            StopInstr(),
        ],
    )

    # try_col: if col == n, this row is exhausted -> die; else test safety.
    worker.add_thread(
        "try_col",
        [
            OpInstr(Op.LT, cond, col, Imm(n)),
            SwitchInstr(cond, "check", "die"),
            StopInstr(),
        ],
    )

    # check: scan rows 0..row-1 of the packed board for conflicts, peeling
    # 4 bits per iteration with constant divisions (TAM has no variable
    # shift).  safe starts 1; any column or diagonal hit clears it.
    worker.add_thread(
        "check",
        [
            ConInstr(safe, 1),
            ConInstr(r2, 0),
            OpInstr(Op.IADD, u, board, Imm(0)),  # u = remaining packed board
            ForkInstr("check_row"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "check_row",
        [
            OpInstr(Op.LT, cond, r2, row),
            SwitchInstr(cond, "check_one", "resolve"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "check_one",
        [
            # t = column of row r2: low 4 bits of u, minus the +1 offset.
            OpInstr(Op.IDIV, diff, u, Imm(16)),
            OpInstr(Op.IMUL, t, diff, Imm(16)),
            OpInstr(Op.ISUB, t, u, t),  # t = u % 16
            OpInstr(Op.IADD, u, diff, Imm(0)),  # u //= 16
            OpInstr(Op.ISUB, t, t, Imm(1)),  # stored col
            # Column conflict.
            OpInstr(Op.EQ, cond, t, col),
            SwitchInstr(cond, "unsafe", "check_diag"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "check_diag",
        [
            # |col - t| == row - r2 ?
            OpInstr(Op.ISUB, diff, col, t),
            OpInstr(Op.IMUL, cond, diff, diff),
            OpInstr(Op.ISUB, t, row, r2),
            OpInstr(Op.IMUL, t, t, t),
            OpInstr(Op.EQ, cond, cond, t),
            SwitchInstr(cond, "unsafe", "next_row"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "next_row",
        [
            OpInstr(Op.IADD, r2, r2, Imm(1)),
            ForkInstr("check_row"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "unsafe", [ConInstr(safe, 0), ForkInstr("resolve"), StopInstr()]
    )

    # resolve: if safe, either count a solution (last row) or spawn a child.
    worker.add_thread(
        "resolve",
        [
            SwitchInstr(safe, "place", "advance"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "place",
        [
            OpInstr(Op.IADD, t, row, Imm(1)),
            OpInstr(Op.LT, cond, t, Imm(n)),
            SwitchInstr(cond, "spawn", "solution"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "solution",
        [
            OpInstr(Op.IADD, solutions, solutions, Imm(1)),
            ForkInstr("advance"),
            StopInstr(),
        ],
    )
    # spawn: child_board = board | (col+1) << 4*row — computed by
    # multiply-add since the shift amount 4*row needs 16^row; rows are
    # processed in order, so the packed slot for this row is the lowest
    # empty one: child_board = board + (col+1) * 16^row.  The power is
    # accumulated in a loop.
    worker.add_thread(
        "spawn",
        [
            OpInstr(Op.IADD, kids, kids, Imm(1)),
            ConInstr(t, 0),
            ConInstr(child_board, 1),
            ForkInstr("spawn_pow"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "spawn_pow",
        [
            OpInstr(Op.LT, cond, t, row),
            SwitchInstr(cond, "spawn_pow_step", "spawn_go"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "spawn_pow_step",
        [
            OpInstr(Op.IMUL, child_board, child_board, Imm(16)),
            OpInstr(Op.IADD, t, t, Imm(1)),
            ForkInstr("spawn_pow"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "spawn_go",
        [
            # child_board currently holds 16^row.
            OpInstr(Op.IADD, u, col, Imm(1)),
            OpInstr(Op.IMUL, child_board, child_board, u),
            OpInstr(Op.IADD, child_board, child_board, board),
            ResetInstr("kid_ready", 1),
            FallocInstr("queens_worker", reply_inlet=2),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "feed_kid",
        [
            SelfInstr(self_slot),
            SendInstr(frame_slot=child, inlet=0, values=(self_slot,)),
            OpInstr(Op.IADD, t, row, Imm(1)),
            SendInstr(frame_slot=child, inlet=1, values=(child_board, t)),
            ForkInstr("advance"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "advance",
        [
            OpInstr(Op.IADD, col, col, Imm(1)),
            ForkInstr("try_col"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "die",
        [
            ConInstr(dead, 1),
            OpInstr(Op.LE, cond, kids, Imm(0)),
            SwitchInstr(cond, "report"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "merge",
        [
            ResetInstr("kid_done", 1),
            OpInstr(Op.IADD, solutions, solutions, ca),
            OpInstr(Op.ISUB, kids, kids, Imm(1)),
            OpInstr(Op.LE, cond, kids, Imm(0)),
            OpInstr(Op.AND, cond, cond, dead),
            SwitchInstr(cond, "report"),
            StopInstr(),
        ],
    )
    worker.add_thread(
        "report",
        [
            SendInstr(frame_slot=parent, inlet=DONE_INLET, values=(solutions,)),
            StopInstr(),
        ],
    )
    return worker


def build_driver() -> Codeblock:
    self_slot, child, total, ca, done = range(5)
    driver = Codeblock("queens_driver", frame_size=5)
    driver.add_inlet(2, dest_slots=(child,), counter="kid_ready")
    driver.add_counter("kid_ready", 1, "feed")
    driver.add_inlet(DONE_INLET, dest_slots=(ca,), counter="root_done")
    driver.add_counter("root_done", 1, "finish")
    driver.add_thread(
        "entry",
        [
            ConInstr(total, 0),
            ConInstr(done, 0),
            FallocInstr("queens_worker", reply_inlet=2),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "feed",
        [
            SelfInstr(self_slot),
            SendInstr(frame_slot=child, inlet=0, values=(self_slot,)),
            ConInstr(total, 0),  # reuse: (board=0, row=0) needs two zeros
            SendInstr(frame_slot=child, inlet=1, values=(total, total)),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "finish",
        [
            OpInstr(Op.IADD, total, ca, Imm(0)),
            ConInstr(done, 1),
            StopInstr(),
        ],
    )
    driver.set_entry("entry")
    return driver


@dataclass
class QueensResult:
    n: int
    nodes: int
    solutions: int
    stats: TamStats
    machine: TamMachine

    def verify(self) -> None:
        expected = reference_count(self.n)
        if self.solutions != expected:
            raise TamError(
                f"{self.n}-queens found {self.solutions}, expected {expected}"
            )


def run_queens(
    n: int = 6,
    nodes: int = 16,
    verify: bool = True,
    fast: bool = True,
    tracer=None,
    backend=None,
) -> QueensResult:
    """Count the N-Queens solutions with one activation per tree node.

    ``backend`` names the execution backend ("reference", "fastpath",
    "codegen"); with ``None`` the legacy ``fast`` flag decides.
    ``tracer`` opts the machine into message-path event tracing
    (:mod:`repro.obs.tracer`).
    """
    if n < 1 or n > MAX_N:
        raise TamError(f"board size {n} outside 1..{MAX_N}")
    machine = TamMachine(nodes, fast=fast, tracer=tracer, backend=backend)
    machine.load(build_worker(n))
    machine.load(build_driver())
    ref = machine.boot("queens_driver")
    stats = machine.run()
    if not machine.read_slot(ref, 4):
        raise TamError("queens driver never finished")
    result = QueensResult(
        n=n,
        nodes=nodes,
        solutions=int(machine.read_slot(ref, 2)),
        stats=stats,
        machine=machine,
    )
    if verify:
        result.verify()
    return result
