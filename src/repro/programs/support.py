"""Shared helpers for building TAM programs.

TAM codeblocks are built programmatically (the paper's were compiled from
Id); these helpers keep the generated code readable: named frame-slot
allocation instead of magic numbers, and the accumulate-on-arrival inlet
pattern both evaluation programs use to collect results.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import TamError


class Slots:
    """Named frame-slot allocation for one codeblock."""

    def __init__(self) -> None:
        self._names: Dict[str, int] = {}
        self._next = 0

    def one(self, name: str) -> int:
        """Allocate (or look up) a single named slot."""
        if name not in self._names:
            self._names[name] = self._next
            self._next += 1
        return self._names[name]

    def many(self, name: str, count: int) -> List[int]:
        """Allocate ``count`` consecutive slots named ``name[0..count)``."""
        first = self._names.get(f"{name}[0]")
        if first is None:
            first = self._next
            for index in range(count):
                key = f"{name}[{index}]"
                if key in self._names:
                    raise TamError(f"slot group {name!r} partially allocated")
                self._names[key] = first + index
            self._next += count
        return [first + index for index in range(count)]

    def __getitem__(self, name: str) -> int:
        try:
            return self._names[name]
        except KeyError:
            raise TamError(f"unknown slot {name!r}") from None

    @property
    def size(self) -> int:
        """Frame size needed for everything allocated so far."""
        return self._next


class InletNumbers:
    """Sequential inlet numbering with names."""

    def __init__(self) -> None:
        self._names: Dict[str, int] = {}
        self._next = 0

    def one(self, name: str) -> int:
        if name not in self._names:
            self._names[name] = self._next
            self._next += 1
        return self._names[name]

    def many(self, name: str, count: int) -> List[int]:
        return [self.one(f"{name}[{index}]") for index in range(count)]

    def __getitem__(self, name: str) -> int:
        try:
            return self._names[name]
        except KeyError:
            raise TamError(f"unknown inlet {name!r}") from None
