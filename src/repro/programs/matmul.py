"""Blocked matrix multiply on TAM (the paper's first benchmark).

"The matrix multiply program subdivides matrices into 4 by 4 blocks and
computes their products" (Section 4.2), compiled "so that any two
procedure invocations would communicate across the network", at a grain of
roughly 3 floating-point operations per message.

Structure of this reproduction (all cross-frame traffic is messages):

* The **driver** activation allocates three block *directories* (I-
  structures of block references) plus one I-structure per 4×4 block of A
  and B, fills A and B element by element with ``ISTORE`` (PWrite)
  operations, then spawns one **block-product** activation per C block
  (``FALLOC`` + argument Sends) and accumulates the returned block sums.
* Each **block-product** activation loops over k: it fetches the A(i,k)
  and B(k,j) block references from the directories (PReads), fetches all
  32 block elements (PReads), and accumulates the 4×4 product locally
  (64 multiply-adds per k step — the paper's ~3 flops/message grain).
  It finally allocates its C block, banks the 16 results (PWrites),
  registers the block in the C directory, and Sends its local sum home.

Matrices are synthetic but dense and verifiable: ``A[i][j] = 0.5·i +
0.25·j + 1`` and ``B[i][j] = 0.125·i − 0.0625·j + 2``; the driver's
accumulated total and the reassembled C are checked against NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import TamError
from repro.tam.codeblock import Codeblock
from repro.tam.frame import FrameRef
from repro.tam.instructions import (
    ConInstr,
    FallocInstr,
    ForkInstr,
    IallocInstr,
    IfetchInstr,
    Imm,
    IstoreInstr,
    Op,
    OpInstr,
    ResetInstr,
    SendInstr,
    StopInstr,
    SwitchInstr,
)
from repro.tam.runtime import IStructRef, TamMachine
from repro.tam.stats import TamStats
from repro.programs.support import InletNumbers, Slots

BLOCK = 4
BLOCK_ELEMS = BLOCK * BLOCK


def a_value(i: int, j: int) -> float:
    return 0.5 * i + 0.25 * j + 1.0


def b_value(i: int, j: int) -> float:
    return 0.125 * i - 0.0625 * j + 2.0


def reference_matrices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """The NumPy ground truth for an n×n run."""
    i = np.arange(n).reshape(-1, 1)
    j = np.arange(n).reshape(1, -1)
    a = 0.5 * i + 0.25 * j + 1.0
    b = 0.125 * i - 0.0625 * j + 2.0
    return a, b


# ---------------------------------------------------------------------------
# The block-product codeblock.
# ---------------------------------------------------------------------------


def build_block_codeblock(nb: int, done_inlet: int) -> Codeblock:
    """One C(i,j) block-product activation for an nb×nb block grid."""
    s = Slots()
    parent = s.one("parent")
    dir_a = s.one("dirA")
    dir_b = s.one("dirB")
    dir_c = s.one("dirC")
    bi = s.one("i")
    bj = s.one("j")
    k = s.one("k")
    ref_a = s.one("refA")
    ref_b = s.one("refB")
    ref_c = s.one("refC")
    t = s.one("t")
    cond = s.one("cond")
    total = s.one("sum")
    a_el = s.many("a", BLOCK_ELEMS)
    b_el = s.many("b", BLOCK_ELEMS)
    c_el = s.many("c", BLOCK_ELEMS)

    inlets = InletNumbers()
    in_parent = inlets.one("parent")
    in_dirs = inlets.one("dirs")
    in_ij = inlets.one("ij")
    in_dirc = inlets.one("dirc")
    in_ref_a = inlets.one("refA")
    in_ref_b = inlets.one("refB")
    in_a = inlets.many("a", BLOCK_ELEMS)
    in_b = inlets.many("b", BLOCK_ELEMS)
    in_cblk = inlets.one("cblk")

    block = Codeblock("mm_block", frame_size=s.size)
    block.add_inlet(in_parent, dest_slots=(parent,), counter="args")
    block.add_inlet(in_dirs, dest_slots=(dir_a, dir_b), counter="args")
    block.add_inlet(in_ij, dest_slots=(bi, bj), counter="args")
    block.add_inlet(in_dirc, dest_slots=(dir_c,), counter="args")
    block.add_counter("args", 4, "start")
    block.add_inlet(in_ref_a, dest_slots=(ref_a,), counter="refs")
    block.add_inlet(in_ref_b, dest_slots=(ref_b,), counter="refs")
    block.add_counter("refs", 2, "fetch")
    for e in range(BLOCK_ELEMS):
        block.add_inlet(in_a[e], dest_slots=(a_el[e],), counter="elems")
        block.add_inlet(in_b[e], dest_slots=(b_el[e],), counter="elems")
    block.add_counter("elems", 2 * BLOCK_ELEMS, "compute")
    block.add_inlet(in_cblk, dest_slots=(ref_c,), counter="cblk")
    block.add_counter("cblk", 1, "store")

    start = [ConInstr(c_el[e], 0.0) for e in range(BLOCK_ELEMS)]
    start += [ConInstr(k, 0), ForkInstr("k_iter"), StopInstr()]
    block.add_thread("start", start)

    block.add_thread(
        "k_iter",
        [
            ResetInstr("refs", 2),
            OpInstr(Op.IMUL, t, bi, Imm(nb)),
            OpInstr(Op.IADD, t, t, k),
            IfetchInstr(dir_a, t, reply_inlet=in_ref_a),
            OpInstr(Op.IMUL, t, k, Imm(nb)),
            OpInstr(Op.IADD, t, t, bj),
            IfetchInstr(dir_b, t, reply_inlet=in_ref_b),
            StopInstr(),
        ],
    )

    fetch = [ResetInstr("elems", 2 * BLOCK_ELEMS)]
    for e in range(BLOCK_ELEMS):
        fetch.append(IfetchInstr(ref_a, Imm(e), reply_inlet=in_a[e]))
        fetch.append(IfetchInstr(ref_b, Imm(e), reply_inlet=in_b[e]))
    fetch.append(StopInstr())
    block.add_thread("fetch", fetch)

    compute = []
    for r in range(BLOCK):
        for c in range(BLOCK):
            dest = c_el[r * BLOCK + c]
            for kk in range(BLOCK):
                compute.append(
                    OpInstr(Op.FMUL, t, a_el[r * BLOCK + kk], b_el[kk * BLOCK + c])
                )
                compute.append(OpInstr(Op.FADD, dest, dest, t))
    compute += [
        OpInstr(Op.IADD, k, k, Imm(1)),
        OpInstr(Op.LT, cond, k, Imm(nb)),
        SwitchInstr(cond, "k_iter", "finish"),
        StopInstr(),
    ]
    block.add_thread("compute", compute)

    block.add_thread(
        "finish", [IallocInstr(Imm(BLOCK_ELEMS), reply_inlet=in_cblk), StopInstr()]
    )

    store: List = []
    for e in range(BLOCK_ELEMS):
        store.append(IstoreInstr(ref_c, Imm(e), value=c_el[e]))
    # Register the block in the C directory at index i*nb + j.
    store += [
        OpInstr(Op.IMUL, t, bi, Imm(nb)),
        OpInstr(Op.IADD, t, t, bj),
        IstoreInstr(dir_c, t, value=ref_c),
    ]
    # Local block sum, then report home.
    store.append(ConInstr(total, 0.0))
    for e in range(BLOCK_ELEMS):
        store.append(OpInstr(Op.FADD, total, total, c_el[e]))
    store += [
        SendInstr(frame_slot=parent, inlet=done_inlet, values=(total,)),
        StopInstr(),
    ]
    block.add_thread("store", store)
    return block


# ---------------------------------------------------------------------------
# The driver codeblock.
# ---------------------------------------------------------------------------

DRIVER_SELF_SLOT = 0


def build_driver_codeblock(nb: int) -> Codeblock:
    s = Slots()
    assert s.one("self") == DRIVER_SELF_SLOT
    dir_a = s.one("dirA")
    dir_b = s.one("dirB")
    dir_c = s.one("dirC")
    bi = s.one("bi")  # block fill loop counter
    blk = s.one("blk")  # block being filled
    ci = s.one("ci")  # spawn loop counter
    child = s.one("child")
    t = s.one("t")
    t2 = s.one("t2")
    row = s.one("row")
    col = s.one("col")
    val = s.one("val")
    cond = s.one("cond")
    total = s.one("total")
    sum_in = s.one("sum_in")
    remaining = s.one("remaining")
    done_flag = s.one("done_flag")

    inlets = InletNumbers()
    in_dir_a = inlets.one("dirA")
    in_dir_b = inlets.one("dirB")
    in_dir_c = inlets.one("dirC")
    in_blk = inlets.one("blk")
    in_child = inlets.one("child")
    in_done = inlets.one("done")

    nb2 = nb * nb
    driver = Codeblock("mm_driver", frame_size=s.size)
    driver.add_inlet(in_dir_a, dest_slots=(dir_a,), counter="dirs")
    driver.add_inlet(in_dir_b, dest_slots=(dir_b,), counter="dirs")
    driver.add_inlet(in_dir_c, dest_slots=(dir_c,), counter="dirs")
    driver.add_counter("dirs", 3, "go")
    driver.add_inlet(in_blk, dest_slots=(blk,), counter="blk_ready")
    # Both fill phases share this counter; the posted thread branches on
    # the loop index to decide whether an A or a B block just arrived.
    driver.add_counter("blk_ready", 1, "fill_dispatch")
    driver.add_inlet(in_child, dest_slots=(child,), counter="child_ready")
    driver.add_counter("child_ready", 1, "feed")
    driver.add_inlet(in_done, dest_slots=(sum_in,), counter="done_one")
    driver.add_counter("done_one", 1, "accumulate")

    driver.add_thread(
        "entry",
        [
            ConInstr(bi, 0),
            ConInstr(ci, 0),
            ConInstr(total, 0.0),
            ConInstr(remaining, nb2),
            ConInstr(done_flag, 0),
            IallocInstr(Imm(nb2), reply_inlet=in_dir_a),
            IallocInstr(Imm(nb2), reply_inlet=in_dir_b),
            IallocInstr(Imm(nb2), reply_inlet=in_dir_c),
            StopInstr(),
        ],
    )

    # Once the directories exist, filling and spawning proceed in
    # parallel, as an Id compilation would: consumers race producers, so
    # PReads hit full, empty, and deferred elements — the mix the paper
    # measured under LIFO scheduling.
    driver.add_thread(
        "go",
        [ForkInstr("spawn_next"), ForkInstr("fill_a_next"), StopInstr()],
    )

    # --- fill phase ------------------------------------------------------
    # A and B are filled block by block; each block is its own I-structure
    # (allocated remotely, reference arriving at in_blk).
    driver.add_thread(
        "fill_a_next",
        [
            OpInstr(Op.LT, cond, bi, Imm(nb2)),
            SwitchInstr(cond, "alloc_block", "start_b"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "alloc_block",
        [
            ResetInstr("blk_ready", 1),
            IallocInstr(Imm(BLOCK_ELEMS), reply_inlet=in_blk),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "fill_dispatch",
        [
            OpInstr(Op.LT, cond, bi, Imm(nb2)),
            SwitchInstr(cond, "fill_a_one", "fill_b_one"),
            StopInstr(),
        ],
    )

    def fill_thread(which: str) -> List:
        """Fill the 16 elements of the block in ``blk`` and register it."""
        instrs: List = []
        # Block grid coordinates from the phase-local index.
        if which == "a":
            index_expr_base = bi
            directory = dir_a
        else:
            index_expr_base = bi
            directory = dir_b
        # t = phase-local block index (bi for A, bi - nb2 for B).
        if which == "a":
            instrs.append(OpInstr(Op.IADD, t, index_expr_base, Imm(0)))
        else:
            instrs.append(OpInstr(Op.ISUB, t, index_expr_base, Imm(nb2)))
        instrs.append(OpInstr(Op.IDIV, row, t, Imm(nb)))  # block row
        instrs.append(OpInstr(Op.IMUL, t2, row, Imm(nb)))
        instrs.append(OpInstr(Op.ISUB, col, t, t2))  # block col
        instrs.append(OpInstr(Op.IMUL, row, row, Imm(BLOCK)))  # global base row
        instrs.append(OpInstr(Op.IMUL, col, col, Imm(BLOCK)))  # global base col
        for e in range(BLOCK_ELEMS):
            er, ec = divmod(e, BLOCK)
            # val = f(row + er, col + ec), computed with FP ops.
            if which == "a":
                # 0.5*(row+er) + 0.25*(col+ec) + 1.0
                instrs.append(OpInstr(Op.IADD, t, row, Imm(er)))
                instrs.append(OpInstr(Op.IADD, t2, col, Imm(ec)))
                instrs.append(OpInstr(Op.FMUL, val, t, Imm(0.5)))
                instrs.append(OpInstr(Op.FMUL, t2, t2, Imm(0.25)))
                instrs.append(OpInstr(Op.FADD, val, val, t2))
                instrs.append(OpInstr(Op.FADD, val, val, Imm(1.0)))
            else:
                # 0.125*(row+er) - 0.0625*(col+ec) + 2.0
                instrs.append(OpInstr(Op.IADD, t, row, Imm(er)))
                instrs.append(OpInstr(Op.IADD, t2, col, Imm(ec)))
                instrs.append(OpInstr(Op.FMUL, val, t, Imm(0.125)))
                instrs.append(OpInstr(Op.FMUL, t2, t2, Imm(0.0625)))
                instrs.append(OpInstr(Op.FSUB, val, val, t2))
                instrs.append(OpInstr(Op.FADD, val, val, Imm(2.0)))
            instrs.append(IstoreInstr(blk, Imm(e), value=val))
        # Register the block: directory index is the phase-local index.
        if which == "a":
            instrs.append(OpInstr(Op.IADD, t, bi, Imm(0)))
        else:
            instrs.append(OpInstr(Op.ISUB, t, bi, Imm(nb2)))
        instrs.append(IstoreInstr(directory, t, value=blk))
        instrs.append(OpInstr(Op.IADD, bi, bi, Imm(1)))
        if which == "a":
            instrs.append(ForkInstr("fill_a_next"))
        else:
            instrs.append(ForkInstr("fill_b_next"))
        instrs.append(StopInstr())
        return instrs

    driver.add_thread("fill_a_one", fill_thread("a"))
    driver.add_thread(
        "start_b",
        [
            # bi continues from nb2 to 2*nb2 for the B phase.
            ForkInstr("fill_b_next"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "fill_b_next",
        [
            OpInstr(Op.LT, cond, bi, Imm(2 * nb2)),
            SwitchInstr(cond, "alloc_block", "spawn_next"),
            StopInstr(),
        ],
    )
    driver.add_thread("fill_b_one", fill_thread("b"))

    # --- spawn phase -------------------------------------------------------
    driver.add_thread(
        "spawn_next",
        [
            OpInstr(Op.LT, cond, ci, Imm(nb2)),
            SwitchInstr(cond, "spawn_one"),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "spawn_one",
        [
            ResetInstr("child_ready", 1),
            FallocInstr("mm_block", reply_inlet=in_child),
            StopInstr(),
        ],
    )
    driver.add_thread(
        "feed",
        [
            SendInstr(frame_slot=child, inlet=0, values=(DRIVER_SELF_SLOT,)),
            SendInstr(frame_slot=child, inlet=1, values=(dir_a, dir_b)),
            OpInstr(Op.IDIV, row, ci, Imm(nb)),
            OpInstr(Op.IMUL, t, row, Imm(nb)),
            OpInstr(Op.ISUB, col, ci, t),
            SendInstr(frame_slot=child, inlet=2, values=(row, col)),
            SendInstr(frame_slot=child, inlet=3, values=(dir_c,)),
            OpInstr(Op.IADD, ci, ci, Imm(1)),
            ForkInstr("spawn_next"),
            StopInstr(),
        ],
    )

    # --- collection ----------------------------------------------------
    driver.add_thread(
        "accumulate",
        [
            ResetInstr("done_one", 1),
            OpInstr(Op.FADD, total, total, sum_in),
            OpInstr(Op.ISUB, remaining, remaining, Imm(1)),
            OpInstr(Op.LE, cond, remaining, Imm(0)),
            SwitchInstr(cond, "finish"),
            StopInstr(),
        ],
    )
    driver.add_thread("finish", [ConInstr(done_flag, 1), StopInstr()])
    driver.set_entry("entry")
    return driver


# ---------------------------------------------------------------------------
# Host-level driver.
# ---------------------------------------------------------------------------


@dataclass
class MatmulResult:
    """Everything a caller needs from one run."""

    n: int
    nodes: int
    stats: TamStats
    total: float
    machine: TamMachine
    driver_ref: FrameRef
    dir_c: IStructRef

    def reassemble_c(self) -> np.ndarray:
        """Rebuild C from the distributed I-structure blocks."""
        nb = self.n // BLOCK
        c = np.zeros((self.n, self.n))
        for index in range(nb * nb):
            block_ref = self.machine.istructure_peek(self.dir_c, index)
            if block_ref is None:
                raise TamError(f"C block {index} was never written")
            bi, bj = divmod(index, nb)
            for e in range(BLOCK_ELEMS):
                er, ec = divmod(e, BLOCK)
                value = self.machine.istructure_peek(block_ref, e)
                c[bi * BLOCK + er][bj * BLOCK + ec] = value
        return c

    def verify(self, tolerance: float = 1e-6) -> None:
        """Raise unless the distributed result matches NumPy."""
        a, b = reference_matrices(self.n)
        expected = a @ b
        actual = self.reassemble_c()
        error = float(np.max(np.abs(expected - actual)))
        if error > tolerance:
            raise TamError(f"matmul result error {error} exceeds {tolerance}")
        if abs(self.total - float(expected.sum())) > tolerance * expected.size:
            raise TamError(
                f"accumulated total {self.total} != {float(expected.sum())}"
            )


def run_matmul(
    n: int = 16, nodes: int = 16, verify: bool = True, fast: bool = True,
    tracer=None, profiler=None, backend=None,
) -> MatmulResult:
    """Run an n×n blocked matrix multiply on a TAM machine of ``nodes``.

    ``backend`` names the execution backend ("reference", "fastpath",
    "codegen"); with ``None`` the legacy ``fast`` flag decides —
    ``fast=False`` selects the reference interpreter (identical results,
    used by the golden equivalence tests).  ``tracer`` opts the machine
    into message-path event tracing (:mod:`repro.obs.tracer`);
    ``profiler`` into per-node turn attribution and instruction-mix
    counters (:mod:`repro.obs.profiler`); results and statistics are
    identical with or without either.
    """
    if n % BLOCK:
        raise TamError(f"matrix size {n} must be a multiple of {BLOCK}")
    nb = n // BLOCK
    machine = TamMachine(
        nodes, fast=fast, tracer=tracer, profiler=profiler, backend=backend
    )
    driver = build_driver_codeblock(nb)
    done_inlet = 5  # in_done in the driver's inlet numbering
    machine.load(build_block_codeblock(nb, done_inlet=done_inlet))
    machine.load(driver)
    ref = machine.boot("mm_driver")
    machine.write_slot(ref, DRIVER_SELF_SLOT, ref)
    stats = machine.run()
    slots = Slots()  # rebuild the slot map to read results by name
    driver_slots = _driver_slot_map()
    total = machine.read_slot(ref, driver_slots["total"])
    dir_c = machine.read_slot(ref, driver_slots["dirC"])
    done = machine.read_slot(ref, driver_slots["done_flag"])
    if not done:
        raise TamError("matmul driver never reached its finish thread")
    del slots
    result = MatmulResult(
        n=n,
        nodes=nodes,
        stats=stats,
        total=float(total),
        machine=machine,
        driver_ref=ref,
        dir_c=dir_c,
    )
    if verify:
        result.verify()
    return result


def _driver_slot_map() -> dict:
    """Recompute the driver's named slot assignment."""
    s = Slots()
    for name in (
        "self",
        "dirA",
        "dirB",
        "dirC",
        "bi",
        "blk",
        "ci",
        "child",
        "t",
        "t2",
        "row",
        "col",
        "val",
        "cond",
        "total",
        "sum_in",
        "remaining",
        "done_flag",
    ):
        s.one(name)
    return {name: s[name] for name in ("total", "dirC", "done_flag")}
