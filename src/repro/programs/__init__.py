"""The evaluation programs: matmul, Gamteb, and N-Queens on TAM."""

from repro.programs.gamteb import GamtebResult, run_gamteb
from repro.programs.matmul import MatmulResult, run_matmul
from repro.programs.queens import QueensResult, run_queens

__all__ = [
    "GamtebResult",
    "MatmulResult",
    "QueensResult",
    "run_gamteb",
    "run_matmul",
    "run_queens",
]
