"""Exception hierarchy shared across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class BitfieldError(ReproError):
    """A bit-field layout or value is invalid (overlap, overflow, unknown field)."""


class AssemblyError(ReproError):
    """The mini-assembler rejected a handler sequence."""


class MachineError(ReproError):
    """The behavioural RISC machine hit an illegal state (bad register, bad jump)."""


class MessageFormatError(ReproError):
    """A message violates the five-word / 4-bit-type architecture format."""


class ReservedTypeError(MessageFormatError):
    """Software tried to SEND a type-1 (exception) message.

    Section 2.2.2 reserves message type 1 for the hardware's exception
    dispatch path; the send path must reject it rather than silently
    dispatching the receiver to its exception slot."""


class QueueOverflowError(ReproError):
    """A bounded message queue overflowed and CONTROL selected the exception policy."""


class QueueUnderflowError(ReproError):
    """A pop was issued against an empty message queue."""


class ProtectionError(ReproError):
    """A protection violation: privileged message mishandled or PIN mismatch."""


class NetworkError(ReproError):
    """The interconnection fabric was misconfigured or misused."""


class RoutingError(NetworkError):
    """No route exists between two nodes, or a hop left the topology."""


class IStructureError(ReproError):
    """An I-structure invariant was violated (e.g. double write to a full slot)."""


class TamError(ReproError):
    """The Threaded Abstract Machine hit an illegal state."""


class FrameError(TamError):
    """A TAM frame slot or sync counter was misused."""


class DeadlockError(TamError):
    """TAM execution stopped with live work that can never be enabled."""


class CollectiveError(ReproError):
    """A collective operation was misconfigured or violated its protocol
    (unknown operation, duplicate participation, fragment mismatch)."""


class EvaluationError(ReproError):
    """An evaluation harness was asked for an unknown experiment or model."""


class ReconciliationError(ReproError):
    """Two independent accountings of the same run disagree (e.g. the
    profiler's tick attribution versus the tracer's event counts)."""


class SimulationError(ReproError):
    """The simulation kernel was misconfigured or misused."""


class SimStallError(SimulationError):
    """A kernel run exceeded its cycle bound; the message carries the
    diagnostic state snapshot of every registered component."""
